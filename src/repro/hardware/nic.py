"""NIC model: per-rail network interface card attached to a host.

A NIC owns:

* one full-duplex pair of :class:`~repro.sim.flows.Link`\\ s (``tx_link`` /
  ``rx_link``) capped at the rail's DMA bandwidth — DMA flows cross them;
* a receive queue drained by the driver's ``poll()``;
* a send-side **DMA engine** flag: one outstanding bulk (rendezvous)
  transmission at a time.  Eager/PIO sends do not use the DMA engine —
  they occupy the host CPU instead (see :mod:`repro.hardware.host`).

Separating "eager always possible (costs CPU)" from "one DMA in flight per
NIC" mirrors NewMadeleine's track model: the small-packet track and the
put/get track of Figure 1.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque

from ..sim.engine import Simulator
from ..sim.flows import Link
from ..util.errors import DriverError
from .spec import RailSpec

if TYPE_CHECKING:  # pragma: no cover
    from .host import Host

__all__ = ["NIC"]


class NIC:
    """One network interface card."""

    def __init__(self, sim: Simulator, host: "Host", rail: RailSpec, rail_index: int):
        self.sim = sim
        self.host = host
        self.rail = rail
        self.rail_index = rail_index
        name = f"node{host.node_id}.{rail.name}"
        self.name = name
        self.tx_link = Link(f"{name}.tx", rail.bw_MBps)
        self.rx_link = Link(f"{name}.rx", rail.bw_MBps)
        self._rx_queue: Deque[Any] = deque()
        self._dma_busy = False
        #: simulated time until which the eager TX path is occupied by an
        #: in-flight PIO copy.  Only binding when copies are offloaded to
        #: a PIO worker; with the single-threaded pump the copy itself
        #: blocks the engine, so the NIC can never be double-booked.
        self.tx_busy_until = 0.0
        # --- statistics -------------------------------------------------
        self.rx_packets = 0
        self.tx_eager_packets = 0
        self.tx_eager_bytes = 0
        self.tx_dma_transfers = 0
        self.tx_dma_bytes = 0
        host.attach_nic(self)

    # -- receive side ----------------------------------------------------
    def deliver(self, packet: Any) -> None:
        """Called by the fabric/flow completion: a packet landed here."""
        self._rx_queue.append(packet)
        self.rx_packets += 1
        self.host.wake()

    def drain_rx(self) -> list[Any]:
        """Remove and return all queued received packets (driver poll)."""
        out = list(self._rx_queue)
        self._rx_queue.clear()
        return out

    @property
    def rx_pending(self) -> int:
        return len(self._rx_queue)

    # -- send-side DMA engine ---------------------------------------------
    @property
    def dma_busy(self) -> bool:
        """True while a bulk transmission is in flight from this NIC."""
        return self._dma_busy

    def reserve_dma(self) -> None:
        """Claim the DMA engine (from rendezvous commit until drain).

        The engine is claimed as soon as a strategy commits a rendezvous
        to this NIC — before the handshake completes — so that no second
        large transfer is scheduled onto a rail that is already spoken for.
        """
        if self._dma_busy:
            raise DriverError(f"{self.name}: DMA engine already busy")
        self._dma_busy = True

    def release_dma(self) -> None:
        """Free the DMA engine (last byte drained, or rendezvous aborted)."""
        if not self._dma_busy:
            raise DriverError(f"{self.name}: releasing idle DMA engine")
        self._dma_busy = False
        # A freed DMA engine is a scheduling opportunity: wake the pump so
        # the strategy is consulted again ("when some NICs become idle ...
        # the optimizing scheduler is queried for some new packet").
        self.host.wake()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NIC {self.name} rx={len(self._rx_queue)} dma_busy={self._dma_busy}>"
