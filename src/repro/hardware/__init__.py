"""Hardware models: hosts, NICs, rails, fabrics, platform assembly."""

from .host import Host
from .nic import NIC
from .platform import Platform
from .presets import (
    GIGE_TCP,
    IB_DDR,
    MYRI_10G,
    PAPER_HOST,
    PRESET_RAILS,
    QUADRICS_QM500,
    SCI_D33X,
    paper_platform,
    single_rail_platform,
)
from .spec import HostSpec, PlatformSpec, RailSpec, TopologySpec
from .topology import (
    TOPOLOGY_BUILDERS,
    dragonfly_platform,
    fat_tree_platform,
    rail_optimized_platform,
    topology_platform,
)
from .wire import Fabric

__all__ = [
    "Host",
    "NIC",
    "Platform",
    "Fabric",
    "HostSpec",
    "PlatformSpec",
    "RailSpec",
    "TopologySpec",
    "TOPOLOGY_BUILDERS",
    "fat_tree_platform",
    "dragonfly_platform",
    "rail_optimized_platform",
    "topology_platform",
    "MYRI_10G",
    "QUADRICS_QM500",
    "SCI_D33X",
    "GIGE_TCP",
    "IB_DDR",
    "PAPER_HOST",
    "PRESET_RAILS",
    "paper_platform",
    "single_rail_platform",
]
