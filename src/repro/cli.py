"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``pingpong``     one measured point (size, segments, strategy)
``flood``        sustained streaming throughput (windowed non-blocking sends)
``figures``      regenerate paper figures as tables (and ASCII plots)
``ablations``    run the design-choice ablations
``extensions``   beyond-the-paper experiments (rail scaling, hetero mix,
                 parallel PIO)
``sample``       run init-time sampling and print the fitted models
``experiments``  write the full paper-vs-measured EXPERIMENTS.md record
``trace``        run a span-traced benchmark and export a Chrome/Perfetto
                 trace plus the per-request latency breakdown
``analyze``      critical-path latency attribution of a traced run: blame
                 tables, rail timelines, Chrome-trace overlay
``bench run``    record a benchmark run as a self-describing BENCH_*.json
                 (``--serve`` exposes a live OpenMetrics endpoint)
``bench compare``diff two run records / gate on simulated-result drift
``bench history``cross-run trend / step-change analytics over BENCH_*.json
``metrics``      run the canonical probe workload and print its metrics
                 (OpenMetrics or JSON)
``ledger``       queryable SQLite run ledger: ingest bench records, chaos
                 reports, fault plans and event logs; query by git SHA
``topo``         describe the multi-switch topology presets (fat-tree,
                 dragonfly, rail-optimized) and their sample routes
``list``         show available strategies, drivers and rail presets

Every command accepts ``--platform config.json`` (see
:mod:`repro.util.config`) and defaults to the paper's 2-node
Myri-10G + Quadrics testbed.  Global ``--log-level``/``--log-json``/
``--log-file`` route all diagnostics through the structured event log
(:mod:`repro.obs.log`); ``repro bench run`` and ``repro chaos`` bind a
``run_id`` correlation id (``--run-id`` / ``$REPRO_RUN_ID`` / generated)
into every event and artifact they produce.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .bench import (
    FIGURES,
    TRACE_TARGETS,
    report_figure,
    run_figure,
    run_pingpong,
    run_traced,
    write_reports,
)
from .bench import ablations as ablations_mod
from .bench import scale as scale_mod
from .core.sampling import sample_rails
from .core.session import Session
from .core.strategies import available_strategies
from .drivers import available_drivers
from .hardware.presets import PRESET_RAILS, paper_platform
from .hardware.spec import PlatformSpec
from .util.config import platform_from_json
from .util.units import format_size, parse_size

__all__ = ["main", "build_parser"]

from .bench import extensions as extensions_mod

EXTENSIONS = {
    "rail_scaling": extensions_mod.ext_rail_scaling,
    "heterogeneous_mix": extensions_mod.ext_heterogeneous_mix,
    "parallel_pio_latency": extensions_mod.ext_parallel_pio_latency,
}

ABLATIONS = {
    "poll_cost": ablations_mod.ablation_poll_cost,
    "eager_threshold": ablations_mod.ablation_eager_threshold,
    "bus_capacity": ablations_mod.ablation_bus_capacity,
    "window": ablations_mod.ablation_window,
    "split_ratio": ablations_mod.ablation_split_ratio,
    "parallel_pio": ablations_mod.ablation_parallel_pio,
}


def _add_stream_flags(p: argparse.ArgumentParser) -> None:
    """Streaming/sampled tracing flags shared by ``trace`` and ``analyze``."""
    p.add_argument(
        "--stream", metavar="JSONL",
        help="record through a bounded-memory StreamingTracer spilling"
        " spans to JSONL (replayable with 'repro ledger' artifacts /"
        " load_span_stream)",
    )
    p.add_argument(
        "--stream-window", type=int, default=1024, metavar="N",
        help="max closed spans held in memory while streaming (default: 1024)",
    )
    p.add_argument(
        "--sample-rate", type=float, default=1.0, metavar="R",
        help="keep this fraction of span trees, decided by a seeded hash"
        " of each root span's identity (deterministic; default: 1.0)",
    )
    p.add_argument(
        "--sample-head", type=int, default=None, metavar="N",
        help="keep only the first N spans of the run (by span id)",
    )
    p.add_argument(
        "--sample-seed", type=int, default=0, metavar="S",
        help="seed of the rate-sampling hash (default: 0)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NewMadeleine multi-rail reproduction (HCW/IPDPS 2007)",
    )
    parser.add_argument(
        "--platform", metavar="JSON", help="platform config file (default: paper testbed)"
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warn", "error"), default="info",
        help="structured-event severity floor (default: info)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="render stderr diagnostics as JSONL instead of text",
    )
    parser.add_argument(
        "--log-file", metavar="JSONL",
        help="also append machine-readable events to JSONL (what"
        " 'repro ledger ingest' reads)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("pingpong", help="measure one ping-pong point")
    p.add_argument("--size", default="8M", help="total message size (e.g. 4, 32K, 8M)")
    p.add_argument("--segments", type=int, default=1)
    p.add_argument("--strategy", default="split_balance", choices=available_strategies())
    p.add_argument("--rail", help="rail name for pinned strategies")
    p.add_argument("--reps", type=int, default=5)
    p.add_argument("--pio-workers", type=int, default=None, help="extra PIO threads (§4)")
    p.add_argument(
        "--json", action="store_true", help="emit the point as a run-record JSON object"
    )

    fl = sub.add_parser("flood", help="measure sustained streaming throughput")
    fl.add_argument("--size", default="256K", help="message size (e.g. 4K, 1M)")
    fl.add_argument("--count", type=int, default=64)
    fl.add_argument("--window", type=int, default=8, help="max outstanding sends")
    fl.add_argument("--strategy", default="greedy", choices=available_strategies())
    fl.add_argument(
        "--json", action="store_true", help="emit the point as a run-record JSON object"
    )

    f = sub.add_parser("figures", help="regenerate paper figures")
    f.add_argument("ids", nargs="*", help=f"subset of {sorted(FIGURES)} (default: all)")
    f.add_argument("--reps", type=int, default=3)
    f.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan figure points over N worker processes (0 = all cores;"
        " simulated results are bit-identical to a serial run)",
    )
    f.add_argument("--plot", action="store_true", help="also render ASCII plots")
    f.add_argument("--out", metavar="DIR", help="write .txt/.csv reports under DIR")

    a = sub.add_parser("ablations", help="run design-choice ablations")
    a.add_argument("names", nargs="*", help=f"subset of {sorted(ABLATIONS)} (default: all)")

    x = sub.add_parser("extensions", help="run beyond-the-paper experiments")
    x.add_argument("names", nargs="*", help=f"subset of {sorted(EXTENSIONS)} (default: all)")

    sub.add_parser("sample", help="run init-time sampling and print the models")

    e = sub.add_parser("experiments", help="write the EXPERIMENTS.md record")
    e.add_argument("-o", "--output", default="EXPERIMENTS.md")
    e.add_argument("--reps", type=int, default=3)
    e.add_argument("--no-ablations", action="store_true")

    t = sub.add_parser(
        "trace", help="record a span-traced run and export Chrome trace JSON"
    )
    t.add_argument(
        "target",
        nargs="?",
        default="fig6",
        help=f"what to trace: one of {sorted(TRACE_TARGETS)} (figure ids"
        " like fig4a or bench_fig6_* are accepted; default: fig6)",
    )
    t.add_argument(
        "-o", "--output", metavar="JSON", default="trace.json",
        help="Chrome trace-event output file (open in Perfetto / chrome://tracing)",
    )
    t.add_argument(
        "--jsonl", metavar="FILE", help="also dump raw spans as JSONL to FILE"
    )
    t.add_argument(
        "--no-report", action="store_true", help="skip the per-request latency report"
    )
    t.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable summary (kernel stats, counters,"
        " fault health) instead of text",
    )
    _add_stream_flags(t)

    an = sub.add_parser(
        "analyze",
        help="critical-path latency attribution of a span-traced run",
    )
    an.add_argument(
        "target",
        nargs="?",
        default="fig6",
        help=f"what to analyze: one of {sorted(TRACE_TARGETS)} (default: fig6)",
    )
    an.add_argument(
        "--node", type=int, default=None, metavar="N",
        help="restrict attribution to requests submitted by node N (default: all)",
    )
    an.add_argument(
        "--bins", type=int, default=24, metavar="N",
        help="rail-utilization timeline resolution (default: 24)",
    )
    an.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    an.add_argument(
        "-o", "--output", metavar="JSON",
        help="also write the Chrome trace with the critical-path overlay lane",
    )
    _add_stream_flags(an)

    b = sub.add_parser("bench", help="benchmark run registry and regression gate")
    bsub = b.add_subparsers(dest="bench_command", required=True)

    br = bsub.add_parser("run", help="record a run as BENCH_*.json")
    br.add_argument(
        "--engine",
        action="store_true",
        help="run the substrate micro-benchmarks (wall-clock + simulated)",
    )
    br.add_argument(
        "--figures",
        nargs="*",
        metavar="FIG",
        default=None,
        help=f"run paper figures (subset of {sorted(FIGURES)}; bare flag = all)",
    )
    br.add_argument(
        "--scale",
        action="store_true",
        help="run the collectives scaling suite (multi-lane allreduce/"
        " barrier, NIC barrier over P node counts)",
    )
    br.add_argument(
        "--scale-points", type=int, nargs="+", metavar="P", default=None,
        help=f"node counts for --scale (default: {list(scale_mod.DEFAULT_POINTS)};"
        " implies --scale)",
    )
    br.add_argument(
        "--scale-algos", nargs="+", metavar="ALGO", default=None,
        choices=scale_mod.SCALE_ALGOS,
        help=f"collectives for --scale (default: all of {list(scale_mod.SCALE_ALGOS)};"
        " implies --scale)",
    )
    br.add_argument(
        "--adaptive",
        action="store_true",
        help="run the adaptive degrade-recovery suite (feedback/tournament"
        " strategies re-converging after a mid-run rail degrade)",
    )
    br.add_argument("--reps", type=int, default=2, help="simulated reps per figure point")
    br.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the figure sweeps and scale cells (0 ="
        " all cores; the record's simulated points are bit-identical to"
        " --jobs 1)",
    )
    br.add_argument(
        "--wall-reps", type=int, default=5, help="wall-clock repetitions (median kept)"
    )
    br.add_argument(
        "--backend", choices=("auto", "heap", "calendar", "native"), default=None,
        help="simulation kernel backend (default: $REPRO_SIM_BACKEND, then"
        " auto = native when a C toolchain is available, else calendar);"
        " exported to $REPRO_SIM_BACKEND so --jobs workers inherit it",
    )
    br.add_argument(
        "--flows", choices=("auto", "scalar", "vector"), default=None,
        help="flow-allocator mode (default: $REPRO_SIM_FLOWS, then auto ="
        " vector when numpy is available); exported to $REPRO_SIM_FLOWS",
    )
    br.add_argument("--name", help="record name (default: derived from suites)")
    br.add_argument("-o", "--output", required=True, metavar="JSON")
    br.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve live OpenMetrics on 127.0.0.1:PORT while the run is in"
        " flight (0 = pick a free port)",
    )
    br.add_argument(
        "--ledger", metavar="DB",
        help="ingest the finished record (and --log-file events) into this"
        " SQLite run ledger",
    )
    br.add_argument(
        "--run-id", metavar="ID",
        help="correlation id tying events/record/ledger rows together"
        " (default: $REPRO_RUN_ID, else generated)",
    )

    bc = bsub.add_parser("compare", help="diff two run records")
    bc.add_argument("baseline", help="baseline BENCH_*.json")
    bc.add_argument("current", help="current BENCH_*.json")
    bc.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero on simulated-result drift (wall-clock stays report-only)",
    )
    bc.add_argument(
        "--sim-tol", type=float, default=None,
        help="relative tolerance for deterministic simulated results",
    )
    bc.add_argument(
        "--wall-tol", type=float, default=None,
        help="report-only relative threshold for wall-clock medians",
    )
    bc.add_argument(
        "--all-rows", action="store_true", help="show every delta row, not only regressions"
    )

    bh = bsub.add_parser(
        "history",
        help="cross-run analytics: trends and step changes over BENCH_*.json",
    )
    bh.add_argument(
        "paths", nargs="+",
        help="record files and/or directories to scan for BENCH_*.json",
    )
    bh.add_argument(
        "--sim-step-tol", type=float, default=None,
        help="step threshold for deterministic simulated quantities",
    )
    bh.add_argument(
        "--wall-step-tol", type=float, default=None,
        help="step threshold for noisy wall-clock medians",
    )
    bh.add_argument(
        "--json", action="store_true", help="emit the full history as JSON"
    )

    c = sub.add_parser(
        "chaos",
        help="fault-injection sweep: every strategy vs random fault plans,"
        " checked against end-to-end delivery invariants",
    )
    c.add_argument(
        "--seeds", type=int, default=20, metavar="N",
        help="number of random fault plans per strategy (seeds 0..N-1)",
    )
    c.add_argument(
        "--strategies", default="all", metavar="NAMES",
        help="comma-separated strategy names, or 'all' (default)",
    )
    c.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (0 = all cores; results are identical to"
        " a serial run)",
    )
    c.add_argument(
        "--horizon", type=float, default=None, metavar="US",
        help="fault horizon per case in simulated microseconds",
    )
    c.add_argument(
        "--messages", type=int, default=None, metavar="N",
        help="messages per case (mixed sizes, both directions)",
    )
    c.add_argument(
        "--save-failing", metavar="DIR",
        help="write each failing case's FaultPlan JSON into DIR for replay",
    )
    c.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve live OpenMetrics on 127.0.0.1:PORT while the sweep runs"
        " (0 = pick a free port)",
    )
    c.add_argument(
        "--ledger", metavar="DB",
        help="ingest the sweep's cases (and --log-file events, failing"
        " plans) into this SQLite run ledger",
    )
    c.add_argument(
        "--run-id", metavar="ID",
        help="correlation id tying events/cases/ledger rows together"
        " (default: $REPRO_RUN_ID, else generated)",
    )

    lg = sub.add_parser(
        "ledger",
        help="queryable SQLite run ledger over bench/chaos/event artifacts",
    )
    lg.add_argument(
        "--db", metavar="FILE", default=None,
        help="ledger database path (default: bench_results/ledger.db)",
    )
    lgsub = lg.add_subparsers(dest="ledger_command", required=True)

    li = lgsub.add_parser(
        "ingest",
        help="ingest BENCH_*.json / chaos reports / fault plans / event logs"
        " (auto-detected by content)",
    )
    li.add_argument("paths", nargs="+", metavar="FILE")
    li.add_argument(
        "--run-id", help="fallback run id for artifacts that carry none"
    )

    lq = lgsub.add_parser("query", help="list runs, newest first")
    lq.add_argument(
        "--sha", metavar="REF",
        help="git SHA prefix; symbolic refs like HEAD are resolved via git",
    )
    lq.add_argument("--run-id", help="exact run id")
    lq.add_argument("--kind", help="substring of the run kind (bench/chaos/events)")
    lq.add_argument("--limit", type=int, default=20)
    lq.add_argument("--json", action="store_true", help="emit rows as JSON")

    lsh = lgsub.add_parser("show", help="everything the ledger holds on one run")
    lsh.add_argument("run_id")

    lgc = lgsub.add_parser("gc", help="drop all but the newest N runs")
    lgc.add_argument("--keep", type=int, default=50, metavar="N")

    m = sub.add_parser(
        "metrics", help="run the canonical probe workload and print its metrics"
    )
    m.add_argument(
        "-f", "--format", choices=("openmetrics", "json"), default="openmetrics"
    )
    m.add_argument("-o", "--output", metavar="FILE", help="write to FILE instead of stdout")

    tp = sub.add_parser(
        "topo",
        help="describe the multi-switch topology presets (fat-tree,"
        " dragonfly, rail-optimized)",
    )
    tp.add_argument(
        "kind", nargs="?", default=None,
        help="preset to describe (fat_tree, dragonfly, rail_opt; omit to"
        " list all)",
    )
    tp.add_argument(
        "--nodes", type=int, default=64, metavar="N",
        help="platform size to instantiate (default: 64)",
    )
    tp.add_argument("--json", action="store_true", help="emit JSON")

    sub.add_parser("list", help="show strategies, drivers, rail presets")
    return parser


def _load_platform(args) -> PlatformSpec:
    if args.platform:
        return platform_from_json(args.platform)
    return paper_platform()


def _cmd_pingpong(args) -> int:
    import dataclasses

    plat = _load_platform(args)
    if args.pio_workers is not None:
        plat = dataclasses.replace(plat, host=plat.host.replace(pio_workers=args.pio_workers))
    size = parse_size(args.size)
    opts = {"rail": args.rail} if args.rail else {}
    samples = sample_rails(plat) if args.strategy == "split_balance" else None
    session = Session(plat, strategy=args.strategy, strategy_opts=opts, samples=samples)
    res = run_pingpong(session, size, segments=args.segments, reps=args.reps)
    if args.json:
        import json

        from .obs.perf import pingpong_point

        print(json.dumps(pingpong_point(res, strategy=args.strategy), sort_keys=True))
        return 0
    print(
        f"strategy={args.strategy} size={format_size(size)} segments={args.segments}:"
        f" one-way {res.one_way_us:.2f} us, {res.bandwidth_MBps:.1f} MB/s"
    )
    return 0


def _cmd_flood(args) -> int:
    from .bench.flood import run_flood

    plat = _load_platform(args)
    size = parse_size(args.size)
    samples = sample_rails(plat) if args.strategy == "split_balance" else None
    session = Session(plat, strategy=args.strategy, samples=samples)
    res = run_flood(session, size, count=args.count, window=args.window)
    if args.json:
        import json

        from .obs.perf import flood_point

        print(json.dumps(flood_point(res, strategy=args.strategy), sort_keys=True))
        return 0
    print(
        f"flood strategy={args.strategy} {args.count}x{format_size(size)}"
        f" window={args.window}: {res.throughput_MBps:.1f} MB/s,"
        f" {res.message_rate_per_ms:.1f} msgs/ms"
    )
    return 0


def _cmd_figures(args) -> int:
    ids = args.ids or sorted(FIGURES)
    unknown = [i for i in ids if i not in FIGURES]
    if unknown:
        print(f"unknown figures {unknown}; available: {sorted(FIGURES)}", file=sys.stderr)
        return 2
    results = []
    for figure_id in ids:
        result = run_figure(figure_id, reps=args.reps, jobs=args.jobs)
        report_figure(result)
        if args.plot:
            print(result.plot())
            print()
        results.append(result)
    if args.out:
        paths = write_reports(results, args.out)
        print(f"wrote {len(paths)} files under {args.out}/")
    return 0


def _cmd_ablations(args) -> int:
    names = args.names or sorted(ABLATIONS)
    unknown = [n for n in names if n not in ABLATIONS]
    if unknown:
        print(f"unknown ablations {unknown}; available: {sorted(ABLATIONS)}", file=sys.stderr)
        return 2
    for name in names:
        print(ABLATIONS[name]().render())
        print()
    return 0


def _cmd_extensions(args) -> int:
    names = args.names or sorted(EXTENSIONS)
    unknown = [n for n in names if n not in EXTENSIONS]
    if unknown:
        print(f"unknown extensions {unknown}; available: {sorted(EXTENSIONS)}", file=sys.stderr)
        return 2
    for name in names:
        print(EXTENSIONS[name]().render())
        print()
    return 0


def _cmd_sample(args) -> int:
    plat = _load_platform(args)
    table = sample_rails(plat)
    for name in table.rail_names:
        s = table.get(name)
        print(f"{name:>10}: {s.bw_MBps:8.1f} MB/s + {s.overhead_us:6.2f} us")
        for size, t in s.points:
            print(f"{'':>12}{format_size(size):>6}: {t:10.2f} us one-way")
    ratios = table.ratios(table.rail_names)
    print("stripping ratios:", {k: round(v, 3) for k, v in ratios.items()})
    return 0


def _cmd_experiments(args) -> int:
    from .bench.experiments import write_experiments_md

    outcomes = write_experiments_md(
        args.output, reps=args.reps, include_ablations=not args.no_ablations
    )
    ok = sum(1 for o in outcomes if o.ok)
    print(f"{args.output}: {ok}/{len(outcomes)} paper claims reproduced")
    return 0 if ok == len(outcomes) else 1


def _make_tracer(args):
    """``True`` (unbounded in-memory recorder) or a StreamingTracer."""
    if args.stream is None:
        if args.sample_rate != 1.0 or args.sample_head is not None:
            raise ValueError("--sample-rate/--sample-head require --stream FILE")
        return True
    from .obs.streaming import SpanSampler, StreamingTracer

    sampler = SpanSampler(
        rate=args.sample_rate, head=args.sample_head, seed=args.sample_seed
    )
    return StreamingTracer(args.stream, window=args.stream_window, sampler=sampler)


def _stream_summary(tracer) -> str:
    s = tracer.stats()
    return (
        f"span stream {s['path']}: {s['spilled']} spilled,"
        f" peak {s['peak_buffered']} buffered (window {s['window']}),"
        f" {s['sampled_out']} sampled out"
    )


def _cmd_trace(args) -> int:
    from .obs import (
        lifecycle_report,
        lifecycle_table,
        poll_tax_by_rail,
        write_chrome_trace,
        write_jsonl,
    )
    from .util.errors import BenchError

    try:
        tracer = _make_tracer(args)
        session = run_traced(
            args.target, _load_platform(args) if args.platform else None, trace=tracer
        )
    except (BenchError, ValueError, OSError) as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        n_events = write_chrome_trace(session, args.output)
        n_lines = write_jsonl(session, args.jsonl) if args.jsonl else None
    except OSError as exc:
        print(f"cannot write trace: {exc}", file=sys.stderr)
        return 1
    sim = session.sim
    stream_stats = None
    if tracer is not True:
        stream_stats = tracer.stats()
        tracer.close()
    if args.json:
        import json

        snapshot = session.metrics.snapshot()
        payload = {
            "target": args.target,
            "trace": {"path": args.output, "span_events": n_events},
            "kernel": {
                "backend": sim.backend,
                "events_executed": sim.events_executed,
                "heap_compactions": sim.heap_compactions,
                "tombstone_ratio": sim.tombstone_ratio,
            },
            "active": session.active_health(),
            "counters": {
                name: value
                for name, value in sorted(snapshot.items())
                if not isinstance(value, dict)
            },
            "faults": (
                None
                if session.faults is None
                else {
                    "health": dict(session.faults.health_report()),
                    "counters": {
                        name: value
                        for name, value in sorted(snapshot.items())
                        if name.startswith("fault.") and not isinstance(value, dict)
                    },
                }
            ),
        }
        if args.jsonl:
            payload["trace"]["jsonl_path"] = args.jsonl
            payload["trace"]["jsonl_records"] = n_lines
        if stream_stats is not None:
            payload["trace"]["stream"] = stream_stats
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    print(f"{args.output}: {n_events} span events (open in https://ui.perfetto.dev)")
    if args.jsonl:
        print(f"{args.jsonl}: {n_lines} JSONL span records")
    if tracer is not True:
        print(_stream_summary(tracer))
    print(
        f"kernel: {sim.backend} backend, {sim.events_executed} events executed,"
        f" {sim.heap_compactions} heap compactions,"
        f" tombstone ratio {sim.tombstone_ratio:.3f}"
    )
    health = session.active_health()
    print(
        f"active set: peak {health['peak_active_nodes']}/{health['n_nodes']} nodes,"
        f" {health['engines_built']} engines built,"
        f" {health['pump_wakeups']} wakeups"
        f" ({health['wakeups_per_event']:.3f}/event),"
        f" idle-skip ratio {health['idle_skip_ratio']:.3f}"
    )
    if session.faults is not None:
        health = session.faults.health_report()
        print("faults:", ", ".join(f"{rail}={h}" for rail, h in health.items()))
        for name, value in sorted(session.metrics.snapshot().items()):
            if name.startswith("fault.") and not isinstance(value, dict) and value:
                print(f"  {name} = {value:g}")
    if not args.no_report:
        rows = lifecycle_report(session, node_id=0)
        print()
        print(lifecycle_table(rows).render())
        tax = poll_tax_by_rail(rows)
        if tax:
            print()
            print("idle-poll tax charged to node 0 requests, by rail:")
            for rail, us in sorted(tax.items()):
                print(f"  {rail:>10}: {us:8.2f} us")
    return 0


def _cmd_analyze(args) -> int:
    import json

    from .obs.critical_path import (
        analyze_session,
        attribution_table,
        blame_table,
        critical_path_trace_events,
        timeline_table,
    )
    from .obs.export import to_chrome_trace
    from .util.errors import BenchError

    try:
        tracer = _make_tracer(args)
        session = run_traced(
            args.target, _load_platform(args) if args.platform else None, trace=tracer
        )
    except (BenchError, ValueError, OSError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if tracer is not True:
        tracer.close()
    report = analyze_session(session, node_id=args.node, bins=args.bins)
    violations = report.verify()
    if args.json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(attribution_table(report.attributions).render())
        print()
        print(blame_table(report.attributions).render())
        print()
        print(timeline_table(report.timeline).render())
        tax = report.poll_tax_totals()
        if tax:
            print()
            print("idle-poll tax on the critical path, by rail:")
            for rail, us in sorted(tax.items()):
                print(f"  {rail:>10}: {us:8.2f} us")
        g = report.graph
        print()
        print(
            f"causal graph: {len(g.events)} events, {len(g.edges)} edges,"
            f" {len(g.requests)} requests"
        )
        if tracer is not True:
            print(_stream_summary(tracer))
    if args.output:
        doc = to_chrome_trace(session)
        doc["traceEvents"].extend(critical_path_trace_events(report.attributions))
        try:
            with open(args.output, "w") as fh:
                json.dump(doc, fh)
        except OSError as exc:
            print(f"cannot write trace: {exc}", file=sys.stderr)
            return 1
        print(
            f"{args.output}: Chrome trace with critical-path overlay"
            f" (open in https://ui.perfetto.dev)"
        )
    for violation in violations:
        print(f"INVARIANT VIOLATION: {violation}", file=sys.stderr)
    return 1 if violations else 0


def _cmd_bench(args) -> int:
    from .util.errors import BenchError

    if args.bench_command == "run":
        from .obs.log import get_logger
        from .obs.perf import BenchRecorder, run_engine_suite, run_figure_suite

        log = get_logger()
        # Select the kernel backend / flows mode via the environment so
        # that --jobs worker processes inherit the exact same kernel.
        import os as _os

        from .sim.backend import ENV_BACKEND, ENV_FLOWS, flows_mode, resolve_backend

        if args.backend:
            _os.environ[ENV_BACKEND] = args.backend
        if args.flows:
            _os.environ[ENV_FLOWS] = args.flows
        try:
            backend = resolve_backend()
            fmode = flows_mode()
        except (ValueError, RuntimeError) as exc:
            print(exc, file=sys.stderr)
            return 2
        run_figures = args.figures is not None
        run_scale = (
            args.scale or args.scale_points is not None or args.scale_algos is not None
        )
        run_adaptive = args.adaptive
        run_engine = args.engine or not (run_figures or run_scale or run_adaptive)
        suites = [
            s
            for s, on in (
                ("engine", run_engine),
                ("figures", run_figures),
                ("scale", run_scale),
                ("adaptive", run_adaptive),
            )
            if on
        ]
        recorder = BenchRecorder(
            args.name or "+".join(suites),
            spec=_load_platform(args),
            run_id=log.bound.get("run_id"),
            backend=backend,
        )
        print(f"kernel backend: {backend}, flows: {fmode}")
        log.info("run.start", command="bench run", record=recorder.name, suites=suites)
        server = None
        engine_publish = figure_publish = None
        if args.serve is not None:
            from .obs.server import LiveMetricsServer

            server = LiveMetricsServer(port=args.serve).start()
            publisher = server.publisher
            publisher.set_meta(command="bench run", record=recorder.name)

            def engine_publish(bench, done, total):  # noqa: F811
                publisher.publish_progress("engine", done, total)
                if recorder._metrics:
                    publisher.publish_metrics(recorder._metrics)

            def figure_publish(fid, done, total):  # noqa: F811
                publisher.publish_progress("figures", done, total)

            print(f"live metrics: {server.url}/metrics")
        try:
            if run_engine:
                print("running engine micro-benchmarks ...")
                run_engine_suite(
                    recorder, wall_reps=args.wall_reps, publish=engine_publish
                )
            if run_figures:
                run_figure_suite(
                    recorder,
                    figures=args.figures or None,
                    reps=args.reps,
                    jobs=args.jobs,
                    progress=lambda fid: print(f"running {fid} ..."),
                    publish=figure_publish,
                )
            if run_scale:
                from .bench.scale import run_scale_suite

                print("running collectives scaling suite ...")
                scale_publish = None
                if server is not None:
                    def scale_publish(cell, done, total):  # noqa: F811
                        server.publisher.publish_progress("scale", done, total)

                results = run_scale_suite(
                    recorder,
                    algos=args.scale_algos or scale_mod.SCALE_ALGOS,
                    points=args.scale_points or scale_mod.DEFAULT_POINTS,
                    reps=max(1, args.wall_reps // 2),
                    jobs=args.jobs,
                    publish=scale_publish,
                )
                for r in results:
                    print(
                        f"  scale.{r.algo} P{r.n_nodes}: {r.elapsed_us:.2f} us"
                        f" simulated, {r.events} events,"
                        f" {r.events_per_sec:,.0f} ev/s,"
                        f" peak active {r.peak_active_nodes}"
                    )
            if run_adaptive:
                from .bench.adaptive import run_adaptive_suite

                print("running adaptive degrade-recovery suite ...")
                adaptive_publish = None
                if server is not None:
                    def adaptive_publish(cell, done, total):  # noqa: F811
                        server.publisher.publish_progress("adaptive", done, total)

                results = run_adaptive_suite(
                    recorder,
                    reps=max(1, args.wall_reps // 2),
                    publish=adaptive_publish,
                )
                for r in results:
                    share = (
                        "n/a" if r.steady_share is None
                        else f"{r.steady_share:.3f}"
                    )
                    print(
                        f"  adaptive.degrade_recovery {r.strategy}:"
                        f" {r.elapsed_us:.2f} us simulated,"
                        f" steady share {share},"
                        f" resamples {r.resamples}"
                        + ("" if r.switches is None else f", switches {r.switches}")
                    )
            if server is not None and recorder._metrics:
                server.publisher.publish_metrics(recorder._metrics)
            path = recorder.write(args.output)
        except BenchError as exc:
            print(exc, file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"cannot write record: {exc}", file=sys.stderr)
            return 1
        finally:
            if server is not None:
                server.stop()
        log.info(
            "run.done", command="bench run", record=recorder.name,
            points=len(recorder), wall_clocks=len(recorder._wall), path=path,
        )
        print(f"{path}: {len(recorder)} points, {len(recorder._wall)} wall-clock benches")
        if args.ledger:
            rid = _ledger_ingest_run(
                args.ledger, record_path=path, log_file=args.log_file
            )
            print(f"ledger {args.ledger}: run {rid}")
        return 0

    if args.bench_command == "compare":
        from .obs import compare as compare_mod
        from .obs.compare import compare_records, delta_table
        from .obs.perf import load_record

        try:
            baseline = load_record(args.baseline)
            current = load_record(args.current)
        except BenchError as exc:
            print(exc, file=sys.stderr)
            return 2
        report = compare_records(
            baseline,
            current,
            sim_rel_tol=args.sim_tol if args.sim_tol is not None else compare_mod.SIM_REL_TOL,
            wall_rel_tol=(
                args.wall_tol if args.wall_tol is not None else compare_mod.WALL_REL_TOL
            ),
        )
        show_all = args.all_rows or not report.ok
        table = delta_table(report, only_regressions=not args.all_rows and not report.ok)
        if show_all and report.deltas:
            print(table.render())
            print()
        print(report.summary())
        if args.gate:
            return 0 if report.ok else 1
        return 0

    if args.bench_command == "history":
        import json

        from .obs import history as history_mod
        from .obs.history import build_history, history_table, load_history, step_table

        try:
            records = load_history(args.paths)
            report = build_history(
                records,
                sim_step_threshold=(
                    args.sim_step_tol
                    if args.sim_step_tol is not None
                    else history_mod.SIM_STEP_THRESHOLD
                ),
                wall_step_threshold=(
                    args.wall_step_tol
                    if args.wall_step_tol is not None
                    else history_mod.WALL_STEP_THRESHOLD
                ),
            )
        except BenchError as exc:
            print(exc, file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
            return 0
        print(history_table(report).render())
        if report.step_changes:
            print()
            print(step_table(report).render())
        print()
        print(report.summary())
        return 0

    raise AssertionError(f"unhandled bench command {args.bench_command!r}")


def _cmd_metrics(args) -> int:
    import json

    from .obs.openmetrics import render_openmetrics
    from .obs.perf import metrics_probe

    snapshot = metrics_probe(_load_platform(args))
    if args.format == "openmetrics":
        text = render_openmetrics(snapshot)
    else:
        text = json.dumps(snapshot, indent=1, sort_keys=True) + "\n"
    if args.output:
        try:
            with open(args.output, "w") as fh:
                fh.write(text)
        except OSError as exc:
            print(f"cannot write {args.output}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_list(args) -> int:
    print("strategies:", ", ".join(available_strategies()))
    print("drivers:   ", ", ".join(available_drivers()))
    print("rails:")
    for name, rail in sorted(PRESET_RAILS.items()):
        print(
            f"  {name:>8}: driver={rail.driver:<6} {rail.bw_MBps:7.1f} MB/s"
            f" lat {rail.lat_us:5.2f} us  eager<= {format_size(rail.eager_threshold)}"
        )
    return 0


def _cmd_chaos(args) -> int:
    from .faults.chaos import (
        DEFAULT_HORIZON_US,
        DEFAULT_MESSAGES,
        chaos_strategies,
        run_chaos,
        save_failing_plans,
    )
    from .util.errors import ConfigError

    server = None
    on_case = None
    try:
        if args.serve is not None:
            from .obs.server import LiveMetricsServer

            total = len(chaos_strategies(args.strategies)) * args.seeds
            server = LiveMetricsServer(port=args.serve).start()
            publisher = server.publisher
            publisher.set_meta(command="chaos", cases=total)
            publisher.publish_progress("chaos", 0, total)
            done = [0]

            def on_case(case, row):  # noqa: F811
                done[0] += 1
                publisher.publish_metrics(row["digest"]["metrics"])
                publisher.publish_progress("chaos", done[0], total)

            print(f"live metrics: {server.url}/metrics")
        report = run_chaos(
            seeds=args.seeds,
            strategies=args.strategies,
            jobs=args.jobs,
            horizon_us=args.horizon if args.horizon is not None else DEFAULT_HORIZON_US,
            messages=args.messages if args.messages is not None else DEFAULT_MESSAGES,
            on_case=on_case,
        )
    except ConfigError as exc:
        print(exc, file=sys.stderr)
        return 2
    finally:
        if server is not None:
            server.stop()
    print(report.summary())
    plan_paths: list[str] = []
    if not report.ok and args.save_failing:
        plan_paths = save_failing_plans(report, args.save_failing)
        for path in plan_paths:
            print(f"replay artifact: {path}")
    if args.ledger:
        rid = _ledger_ingest_run(
            args.ledger, report=report, plan_paths=plan_paths, log_file=args.log_file
        )
        print(f"ledger {args.ledger}: run {rid}")
    return 0 if report.ok else 1


def _ledger_ingest_run(
    db: str,
    record_path: Optional[str] = None,
    report=None,
    plan_paths: Sequence[str] = (),
    log_file: Optional[str] = None,
) -> str:
    """Ingest one CLI invocation's artifacts under its bound run_id."""
    from .obs.ledger import Ledger
    from .obs.log import get_logger

    rid = get_logger().bound.get("run_id")
    with Ledger(db) as ledger:
        if record_path is not None:
            rid = ledger.ingest_bench_record(record_path, run_id=rid)
            ledger.add_artifact(rid, "bench_record", record_path)
        if report is not None:
            rid = ledger.ingest_chaos_report(report, run_id=rid)
        for path in plan_paths:
            ledger.add_artifact(rid, "fault_plan", path)
        if log_file is not None:
            ledger.ingest_events(log_file, run_id=rid)
            ledger.add_artifact(rid, "event_log", log_file)
    return rid


def _resolve_sha(ref: str) -> str:
    """Pass hex SHA prefixes through; resolve symbolic refs via git."""
    import re
    import subprocess

    if re.fullmatch(r"[0-9a-f]{4,40}", ref):
        return ref
    try:
        out = subprocess.run(
            ["git", "rev-parse", ref], capture_output=True, text=True, check=True
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return ref


def _cmd_ledger(args) -> int:
    import json

    from .obs.ledger import DEFAULT_LEDGER_PATH, Ledger
    from .util.errors import BenchError

    db = args.db or DEFAULT_LEDGER_PATH
    try:
        ledger = Ledger(db)
    except (BenchError, OSError) as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        if args.ledger_command == "ingest":
            for path in args.paths:
                rids = ledger.ingest_path(path, run_id=args.run_id)
                print(f"{path}: run {', '.join(rids)}")
            return 0

        if args.ledger_command == "query":
            sha = _resolve_sha(args.sha) if args.sha else None
            rows = ledger.runs(
                sha=sha, run_id=args.run_id, kind=args.kind, limit=args.limit
            )
            if args.json:
                print(json.dumps(rows, indent=1, sort_keys=True, default=str))
                return 0 if rows else 1
            if not rows:
                print(f"{db}: no matching runs")
                return 1
            for r in rows:
                sha8 = (r["git_sha"] or "--------")[:8]
                if r["git_dirty"]:
                    sha8 += "*"
                cells = [f"{r['run_id']}", f"{r['kind']:<12}", f"{sha8:<9}"]
                if r["n_points"]:
                    cells.append(f"points={r['n_points']}")
                if r["n_wall_clocks"]:
                    cells.append(f"wall={r['n_wall_clocks']}")
                if r["n_chaos_cases"]:
                    verdict = (
                        f" (FAIL {r['n_chaos_failures']})"
                        if r["n_chaos_failures"]
                        else " ok"
                    )
                    cells.append(f"cases={r['n_chaos_cases']}{verdict}")
                if r["n_events"]:
                    cells.append(f"events={r['n_events']}")
                if r["n_artifacts"]:
                    cells.append(f"artifacts={r['n_artifacts']}")
                if r["name"]:
                    cells.append(str(r["name"]))
                print("  ".join(cells))
            return 0

        if args.ledger_command == "show":
            print(json.dumps(ledger.show(args.run_id), indent=1, sort_keys=True,
                             default=str))
            return 0

        if args.ledger_command == "gc":
            doomed = ledger.gc(args.keep)
            print(f"{db}: dropped {len(doomed)} runs, kept newest {args.keep}")
            return 0
    except BenchError as exc:
        print(exc, file=sys.stderr)
        return 2
    finally:
        ledger.close()
    raise AssertionError(f"unhandled ledger command {args.ledger_command!r}")


def _cmd_topo(args) -> int:
    import json

    from .hardware.topology import (
        TOPOLOGY_BUILDERS,
        build_plan,
        describe_plan,
        topology_platform,
    )
    from .util.errors import ConfigError

    kinds = [args.kind] if args.kind else sorted(TOPOLOGY_BUILDERS)
    out = []
    for kind in kinds:
        try:
            spec = topology_platform(kind, args.nodes)
        except ConfigError as exc:
            print(exc, file=sys.stderr)
            return 2
        rails = []
        for rail in spec.rails:
            plan = build_plan(rail, spec.n_nodes)
            if plan is not None:
                rails.append(describe_plan(plan))
        out.append({"topology": kind, "n_nodes": spec.n_nodes, "rails": rails})
    if args.json:
        print(json.dumps(out if args.kind is None else out[0], indent=1, sort_keys=True))
        return 0
    for entry in out:
        print(f"{entry['topology']} ({entry['n_nodes']} nodes)")
        for rd in entry["rails"]:
            print(
                f"  rail {rd['rail']}: {rd['switches']} switches,"
                f" {rd['link_MBps']:g} MB/s inter-switch links,"
                f" {rd['hop_us']:g} us/hop"
            )
            for s in rd["sample_routes"]:
                path = " -> ".join(s["links"]) if s["links"] else "(same switch)"
                print(
                    f"    {s['src']} -> {s['dst']}: {s['switch_hops']} switch"
                    f" hops, +{s['extra_latency_us']:g} us, {path}"
                )
    return 0


_COMMANDS = {
    "pingpong": _cmd_pingpong,
    "flood": _cmd_flood,
    "figures": _cmd_figures,
    "ablations": _cmd_ablations,
    "extensions": _cmd_extensions,
    "sample": _cmd_sample,
    "experiments": _cmd_experiments,
    "trace": _cmd_trace,
    "analyze": _cmd_analyze,
    "bench": _cmd_bench,
    "chaos": _cmd_chaos,
    "metrics": _cmd_metrics,
    "ledger": _cmd_ledger,
    "topo": _cmd_topo,
    "list": _cmd_list,
}


def _configure_logging(args) -> None:
    """Install the global structured logger for this invocation.

    ``bench run`` and ``chaos`` always get a ``run_id`` bound (explicit
    flag, then ``$REPRO_RUN_ID``, then a fresh one) so every event and
    ledger row they produce shares one correlation id; other commands
    bind one only when the environment provides it.
    """
    from .obs.log import configure, new_run_id

    run_id = getattr(args, "run_id", None) or os.environ.get("REPRO_RUN_ID")
    produces_run = args.command == "chaos" or (
        args.command == "bench" and getattr(args, "bench_command", None) == "run"
    )
    if run_id is None and produces_run:
        run_id = new_run_id()
    configure(
        level=args.log_level,
        json_mode=args.log_json,
        path=args.log_file,
        **({"run_id": run_id} if run_id else {}),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
