"""A small message-passing layer over the NewMadeleine core.

The paper's short-term plan was to port MPICH-Madeleine onto the
multi-rail engine (§4); this module is the reproduction's stand-in: ranks,
communicators with isolated tag spaces, blocking generator helpers, and
(in :mod:`repro.mpi.collectives`) tree/dissemination collectives.

Because every communicator maps onto the *same* gates, segments from
different communicators interleave in the engine's submission queues and
can be aggregated into one physical packet — the paper's "data segments
can be aggregated ... even if they belong to different logical channels
(e.g. different MPI communicators)".

Tag encoding: ``core_tag = (comm_id << TAG_BITS) | user_tag`` with 16 bits
of user tag per communicator.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional, Union

from ..core.packet import Payload
from ..core.request import RecvRequest, SendRequest
from ..util.errors import ApiError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.session import Session

__all__ = ["Communicator", "CommEndpoint", "TAG_BITS", "MAX_USER_TAG"]

TAG_BITS = 16
MAX_USER_TAG = (1 << TAG_BITS) - 1

_comm_ids = itertools.count(1)


class Communicator:
    """A rank space over all nodes of a session."""

    def __init__(self, session: "Session", name: str = "world"):
        self.session = session
        self.name = name
        self.comm_id = next(_comm_ids)
        self._endpoints: dict[int, CommEndpoint] = {}

    @property
    def size(self) -> int:
        return self.session.n_nodes

    def endpoint(self, rank: int) -> "CommEndpoint":
        """The per-rank handle used inside that rank's process."""
        if not 0 <= rank < self.size:
            raise ApiError(f"rank {rank} out of range [0,{self.size})")
        ep = self._endpoints.get(rank)
        if ep is None:
            ep = self._endpoints[rank] = CommEndpoint(self, rank)
        return ep

    def dup(self, name: Optional[str] = None) -> "Communicator":
        """A new communicator over the same nodes with a fresh tag space."""
        return Communicator(self.session, name=name or f"{self.name}.dup")

    def _core_tag(self, user_tag: int) -> int:
        if not 0 <= user_tag <= MAX_USER_TAG:
            raise ApiError(f"tag {user_tag} out of range [0,{MAX_USER_TAG}]")
        return (self.comm_id << TAG_BITS) | user_tag

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Communicator {self.name} size={self.size}>"


class CommEndpoint:
    """One rank's view of a communicator."""

    def __init__(self, comm: Communicator, rank: int):
        self.comm = comm
        self.rank = rank
        self.iface = comm.session.interface(rank)

    @property
    def size(self) -> int:
        return self.comm.size

    # -- non-blocking ------------------------------------------------------
    def isend(
        self, data: Union[bytes, bytearray, int, Payload], dest: int, tag: int = 0
    ) -> SendRequest:
        if dest == self.rank:
            raise ApiError("self-send is not supported")
        return self.iface.isend(dest, self.comm._core_tag(tag), data)

    def irecv(self, source: int, tag: int = 0) -> RecvRequest:
        if source == self.rank:
            raise ApiError("self-receive is not supported")
        return self.iface.irecv(source, self.comm._core_tag(tag))

    # -- blocking generator helpers (yield from inside a process) -----------
    def send(self, data: Union[bytes, bytearray, int, Payload], dest: int, tag: int = 0):
        """Blocking send: ``yield from ep.send(...)``."""
        req = self.isend(data, dest, tag)
        yield req.completion
        return req

    def recv(self, source: int, tag: int = 0):
        """Blocking receive: ``payload = yield from ep.recv(...)``."""
        req = self.irecv(source, tag)
        yield req.completion
        return req.payload

    def sendrecv(
        self,
        data: Union[bytes, bytearray, int, Payload],
        peer: int,
        send_tag: int = 0,
        recv_tag: Optional[int] = None,
    ):
        """Combined exchange with one peer; returns the received payload."""
        from ..sim.process import AllOf

        rtag = send_tag if recv_tag is None else recv_tag
        sreq = self.isend(data, peer, send_tag)
        rreq = self.irecv(peer, rtag)
        yield AllOf([sreq.completion, rreq.completion])
        return rreq.payload

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CommEndpoint rank={self.rank}/{self.size} comm={self.comm.name}>"
