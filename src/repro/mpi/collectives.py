"""Point-to-point collective algorithms over :class:`CommEndpoint`.

Classic algorithms, implemented as generator functions to ``yield from``
inside a rank's process:

* :func:`barrier` — dissemination barrier, ⌈log2 P⌉ rounds;
* :func:`bcast` — binomial tree rooted anywhere;
* :func:`gather` — linear gather to the root;
* :func:`reduce` / :func:`allreduce` — binomial-tree reduce (+ bcast for
  allreduce) over float values with an arbitrary associative operator.

Scalar values travel as 8-byte IEEE doubles (:func:`encode_value`); byte
payloads travel verbatim.  Collectives use reserved tags near the top of
the user tag space so they never collide with application point-to-point
traffic on the same communicator.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from ..core.packet import Payload
from ..util.errors import ApiError
from .comm import CommEndpoint, MAX_USER_TAG

__all__ = [
    "barrier",
    "bcast",
    "gather",
    "scatter",
    "alltoall",
    "reduce",
    "allreduce",
    "scan",
    "encode_value",
    "decode_value",
]

#: reserved collective tags (top of the user tag space).
TAG_BARRIER = MAX_USER_TAG
TAG_BCAST = MAX_USER_TAG - 1
TAG_GATHER = MAX_USER_TAG - 2
TAG_REDUCE = MAX_USER_TAG - 3
TAG_SCATTER = MAX_USER_TAG - 4
TAG_ALLTOALL = MAX_USER_TAG - 5
TAG_SCAN = MAX_USER_TAG - 6


def encode_value(value: float) -> bytes:
    """Serialize a scalar for a reduction message (8-byte double)."""
    return struct.pack("<d", float(value))


def decode_value(payload: Payload) -> float:
    if payload.data is None or len(payload.data) != 8:
        raise ApiError(f"not a scalar reduction payload: {payload!r}")
    return struct.unpack("<d", payload.data)[0]


def barrier(ep: CommEndpoint):
    """Dissemination barrier: ``yield from barrier(ep)``."""
    size, rank = ep.size, ep.rank
    if size == 1:
        return
    k = 1
    while k < size:
        dst = (rank + k) % size
        src = (rank - k) % size
        if dst == src:
            yield from ep.sendrecv(b"\x00", peer=dst, send_tag=TAG_BARRIER)
        else:
            yield from _xchg(ep, dst, src)
        k *= 2


def _xchg(ep: CommEndpoint, dst: int, src: int):
    """Send a token to ``dst`` and await one from ``src`` (distinct peers)."""
    from ..sim.process import AllOf

    sreq = ep.isend(b"\x00", dst, TAG_BARRIER)
    rreq = ep.irecv(src, TAG_BARRIER)
    yield AllOf([sreq.completion, rreq.completion])


def bcast(ep: CommEndpoint, data: Optional[bytes] = None, root: int = 0):
    """Binomial-tree broadcast; returns the payload on every rank.

    The root passes ``data``; other ranks pass None and receive it.
    """
    size = ep.size
    vrank = (ep.rank - root) % size  # root becomes virtual rank 0
    payload: Optional[Payload]
    if vrank == 0:
        if data is None:
            raise ApiError("bcast root must provide data")
        payload = Payload.of(data)
    else:
        # receive from the parent: clear the lowest set bit of vrank
        parent = (vrank & (vrank - 1)) % size
        payload = yield from ep.recv((parent + root) % size, TAG_BCAST)
    # forward to children: set bits above our lowest set bit
    k = 1
    while k < size:
        if vrank & (k - 1) == 0 and vrank | k != vrank:
            child = vrank | k
            if child < size:
                assert payload is not None
                yield from ep.send(payload, (child + root) % size, TAG_BCAST)
        if vrank & k:
            break
        k *= 2
    return payload


def gather(ep: CommEndpoint, data: bytes, root: int = 0):
    """Linear gather; the root returns ``{rank: payload}``, others None."""
    if ep.rank == root:
        out: dict[int, Payload] = {root: Payload.of(data)}
        reqs = {
            r: ep.irecv(r, TAG_GATHER) for r in range(ep.size) if r != root
        }
        for r, req in reqs.items():
            yield req.completion
            assert req.payload is not None
            out[r] = req.payload
        return out
    yield from ep.send(data, root, TAG_GATHER)
    return None


def scatter(ep: CommEndpoint, data_per_rank=None, root: int = 0):
    """Linear scatter; every rank returns its own payload.

    The root passes a sequence with one entry per rank (its own entry is
    returned locally); other ranks pass None.
    """
    if ep.rank == root:
        if data_per_rank is None or len(data_per_rank) != ep.size:
            raise ApiError(f"scatter root needs {ep.size} entries")
        sends = [
            ep.isend(data_per_rank[r], r, TAG_SCATTER)
            for r in range(ep.size)
            if r != root
        ]
        from ..sim.process import AllOf

        if sends:
            yield AllOf([s.completion for s in sends])
        return Payload.of(data_per_rank[root])
    payload = yield from ep.recv(root, TAG_SCATTER)
    return payload


def alltoall(ep: CommEndpoint, data_per_peer):
    """Personalized all-to-all; returns ``{peer: payload}``.

    ``data_per_peer`` is a sequence with one entry per rank; the entry at
    the rank's own index is ignored.  Posts everything non-blocking, so
    the engine is free to aggregate the small pieces and balance/split
    the large ones.
    """
    if len(data_per_peer) != ep.size:
        raise ApiError(f"alltoall needs {ep.size} entries, got {len(data_per_peer)}")
    from ..sim.process import AllOf

    sends = [
        ep.isend(data_per_peer[peer], peer, TAG_ALLTOALL)
        for peer in range(ep.size)
        if peer != ep.rank
    ]
    recvs = {peer: ep.irecv(peer, TAG_ALLTOALL) for peer in range(ep.size) if peer != ep.rank}
    waits = [s.completion for s in sends] + [r.completion for r in recvs.values()]
    if waits:
        yield AllOf(waits)
    return {peer: req.payload for peer, req in recvs.items()}


def scan(
    ep: CommEndpoint,
    value: float,
    op: Callable[[float, float], float] = lambda a, b: a + b,
):
    """Inclusive prefix reduction along the rank chain.

    Rank r returns ``op(v_0, ..., v_r)``.  Linear algorithm: each rank
    waits for its predecessor's prefix, folds its own value in, and
    forwards the result.
    """
    acc = float(value)
    if ep.rank > 0:
        payload = yield from ep.recv(ep.rank - 1, TAG_SCAN)
        acc = op(decode_value(payload), acc)
    if ep.rank + 1 < ep.size:
        yield from ep.send(encode_value(acc), ep.rank + 1, TAG_SCAN)
    return acc


def reduce(
    ep: CommEndpoint,
    value: float,
    op: Callable[[float, float], float] = lambda a, b: a + b,
    root: int = 0,
):
    """Binomial-tree reduction of a scalar; the root returns the result."""
    size = ep.size
    vrank = (ep.rank - root) % size
    acc = float(value)
    k = 1
    while k < size:
        if vrank & k:
            # send partial result to the parent and leave the tree
            parent = vrank & ~k
            yield from ep.send(encode_value(acc), (parent + root) % size, TAG_REDUCE)
            return None
        child = vrank | k
        if child < size:
            payload = yield from ep.recv((child + root) % size, TAG_REDUCE)
            acc = op(acc, decode_value(payload))
        k *= 2
    return acc


def allreduce(
    ep: CommEndpoint,
    value: float,
    op: Callable[[float, float], float] = lambda a, b: a + b,
):
    """Reduce to rank 0 then broadcast the result; every rank returns it."""
    partial = yield from reduce(ep, value, op, root=0)
    if ep.rank == 0:
        payload = yield from bcast(ep, encode_value(partial), root=0)
    else:
        payload = yield from bcast(ep, None, root=0)
    assert payload is not None
    return decode_value(payload)
