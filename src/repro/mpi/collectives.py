"""Point-to-point collective algorithms over :class:`CommEndpoint`.

Classic algorithms, implemented as generator functions to ``yield from``
inside a rank's process:

* :func:`barrier` — dissemination barrier, ⌈log2 P⌉ rounds;
* :func:`bcast` — binomial tree rooted anywhere;
* :func:`gather` — linear gather to the root;
* :func:`reduce` / :func:`allreduce` — binomial-tree reduce (+ bcast for
  allreduce) over float values with an arbitrary associative operator;
* :func:`multilane_allreduce` / :func:`multilane_barrier` — multi-lane
  decompositions (Träff, arXiv:1910.13373): the vector splits into
  contiguous lane chunks that run concurrent, independently-rooted
  reduce+bcast trees, giving the engine parallel traffic to spread
  across the rails;
* :func:`nic_barrier` — k-ary combining-tree barrier in the style of the
  NIC-based barriers of Yu et al. (arXiv:cs/0402027).

Scalar values travel as 8-byte IEEE doubles (:func:`encode_value`),
vectors as packed double arrays (:func:`encode_vector`); byte payloads
travel verbatim.  Collectives use reserved tags near the top of the user
tag space so they never collide with application point-to-point traffic
on the same communicator; each lane gets its own tag plane.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional, Sequence

from ..core.packet import Payload
from ..util.errors import ApiError
from .comm import CommEndpoint, MAX_USER_TAG

__all__ = [
    "barrier",
    "bcast",
    "gather",
    "scatter",
    "alltoall",
    "reduce",
    "allreduce",
    "scan",
    "multilane_allreduce",
    "multilane_barrier",
    "nic_barrier",
    "encode_value",
    "decode_value",
    "encode_vector",
    "decode_vector",
    "MAX_LANES",
]

#: reserved collective tags (top of the user tag space).
TAG_BARRIER = MAX_USER_TAG
TAG_BCAST = MAX_USER_TAG - 1
TAG_GATHER = MAX_USER_TAG - 2
TAG_REDUCE = MAX_USER_TAG - 3
TAG_SCATTER = MAX_USER_TAG - 4
TAG_ALLTOALL = MAX_USER_TAG - 5
TAG_SCAN = MAX_USER_TAG - 6
TAG_NIC_BARRIER = MAX_USER_TAG - 7

#: lane tag planes sit below the scalar collective tags; lane ``l`` of a
#: multi-lane collective uses ``BASE - l``, so the planes never overlap
#: while ``l < MAX_LANES``.
MAX_LANES = 8
TAG_LANE_REDUCE = MAX_USER_TAG - 8  # .. MAX_USER_TAG - 15
TAG_LANE_BCAST = MAX_USER_TAG - 16  # .. MAX_USER_TAG - 23
TAG_LANE_BARRIER = MAX_USER_TAG - 24  # .. MAX_USER_TAG - 31


def encode_value(value: float) -> bytes:
    """Serialize a scalar for a reduction message (8-byte double)."""
    return struct.pack("<d", float(value))


def decode_value(payload: Payload) -> float:
    if payload.data is None or len(payload.data) != 8:
        raise ApiError(f"not a scalar reduction payload: {payload!r}")
    return struct.unpack("<d", payload.data)[0]


def encode_vector(values: Sequence[float]) -> bytes:
    """Serialize a float vector (packed little-endian doubles)."""
    return struct.pack(f"<{len(values)}d", *(float(v) for v in values))


def decode_vector(payload: Payload) -> list[float]:
    data = payload.data
    if data is None or len(data) % 8:
        raise ApiError(f"not a vector reduction payload: {payload!r}")
    return list(struct.unpack(f"<{len(data) // 8}d", data))


def barrier(ep: CommEndpoint):
    """Dissemination barrier: ``yield from barrier(ep)``."""
    size, rank = ep.size, ep.rank
    if size == 1:
        return
    k = 1
    while k < size:
        dst = (rank + k) % size
        src = (rank - k) % size
        if dst == src:
            yield from ep.sendrecv(b"\x00", peer=dst, send_tag=TAG_BARRIER)
        else:
            yield from _xchg(ep, dst, src)
        k *= 2


def _xchg(ep: CommEndpoint, dst: int, src: int):
    """Send a token to ``dst`` and await one from ``src`` (distinct peers)."""
    from ..sim.process import AllOf

    sreq = ep.isend(b"\x00", dst, TAG_BARRIER)
    rreq = ep.irecv(src, TAG_BARRIER)
    yield AllOf([sreq.completion, rreq.completion])


def bcast(
    ep: CommEndpoint,
    data: Optional[bytes] = None,
    root: int = 0,
    tag: int = TAG_BCAST,
):
    """Binomial-tree broadcast; returns the payload on every rank.

    The root passes ``data``; other ranks pass None and receive it.
    ``tag`` defaults to the reserved broadcast tag; the multi-lane
    collectives pass their lane's tag plane instead.
    """
    size = ep.size
    vrank = (ep.rank - root) % size  # root becomes virtual rank 0
    payload: Optional[Payload]
    if vrank == 0:
        if data is None:
            raise ApiError("bcast root must provide data")
        payload = Payload.of(data)
    else:
        # receive from the parent: clear the lowest set bit of vrank
        parent = (vrank & (vrank - 1)) % size
        payload = yield from ep.recv((parent + root) % size, tag)
    # forward to children: set bits above our lowest set bit
    k = 1
    while k < size:
        if vrank & (k - 1) == 0 and vrank | k != vrank:
            child = vrank | k
            if child < size:
                assert payload is not None
                yield from ep.send(payload, (child + root) % size, tag)
        if vrank & k:
            break
        k *= 2
    return payload


def gather(ep: CommEndpoint, data: bytes, root: int = 0):
    """Linear gather; the root returns ``{rank: payload}``, others None."""
    if ep.rank == root:
        out: dict[int, Payload] = {root: Payload.of(data)}
        reqs = {
            r: ep.irecv(r, TAG_GATHER) for r in range(ep.size) if r != root
        }
        for r, req in reqs.items():
            yield req.completion
            assert req.payload is not None
            out[r] = req.payload
        return out
    yield from ep.send(data, root, TAG_GATHER)
    return None


def scatter(ep: CommEndpoint, data_per_rank=None, root: int = 0):
    """Linear scatter; every rank returns its own payload.

    The root passes a sequence with one entry per rank (its own entry is
    returned locally); other ranks pass None.
    """
    if ep.rank == root:
        if data_per_rank is None or len(data_per_rank) != ep.size:
            raise ApiError(f"scatter root needs {ep.size} entries")
        sends = [
            ep.isend(data_per_rank[r], r, TAG_SCATTER)
            for r in range(ep.size)
            if r != root
        ]
        from ..sim.process import AllOf

        if sends:
            yield AllOf([s.completion for s in sends])
        return Payload.of(data_per_rank[root])
    payload = yield from ep.recv(root, TAG_SCATTER)
    return payload


def alltoall(ep: CommEndpoint, data_per_peer):
    """Personalized all-to-all; returns ``{peer: payload}``.

    ``data_per_peer`` is a sequence with one entry per rank; the entry at
    the rank's own index is ignored.  Posts everything non-blocking, so
    the engine is free to aggregate the small pieces and balance/split
    the large ones.
    """
    if len(data_per_peer) != ep.size:
        raise ApiError(f"alltoall needs {ep.size} entries, got {len(data_per_peer)}")
    from ..sim.process import AllOf

    sends = [
        ep.isend(data_per_peer[peer], peer, TAG_ALLTOALL)
        for peer in range(ep.size)
        if peer != ep.rank
    ]
    recvs = {peer: ep.irecv(peer, TAG_ALLTOALL) for peer in range(ep.size) if peer != ep.rank}
    waits = [s.completion for s in sends] + [r.completion for r in recvs.values()]
    if waits:
        yield AllOf(waits)
    return {peer: req.payload for peer, req in recvs.items()}


def scan(
    ep: CommEndpoint,
    value: float,
    op: Callable[[float, float], float] = lambda a, b: a + b,
):
    """Inclusive prefix reduction along the rank chain.

    Rank r returns ``op(v_0, ..., v_r)``.  Linear algorithm: each rank
    waits for its predecessor's prefix, folds its own value in, and
    forwards the result.
    """
    acc = float(value)
    if ep.rank > 0:
        payload = yield from ep.recv(ep.rank - 1, TAG_SCAN)
        acc = op(decode_value(payload), acc)
    if ep.rank + 1 < ep.size:
        yield from ep.send(encode_value(acc), ep.rank + 1, TAG_SCAN)
    return acc


def reduce(
    ep: CommEndpoint,
    value: float,
    op: Callable[[float, float], float] = lambda a, b: a + b,
    root: int = 0,
):
    """Binomial-tree reduction of a scalar; the root returns the result."""
    size = ep.size
    vrank = (ep.rank - root) % size
    acc = float(value)
    k = 1
    while k < size:
        if vrank & k:
            # send partial result to the parent and leave the tree
            parent = vrank & ~k
            yield from ep.send(encode_value(acc), (parent + root) % size, TAG_REDUCE)
            return None
        child = vrank | k
        if child < size:
            payload = yield from ep.recv((child + root) % size, TAG_REDUCE)
            acc = op(acc, decode_value(payload))
        k *= 2
    return acc


def allreduce(
    ep: CommEndpoint,
    value: float,
    op: Callable[[float, float], float] = lambda a, b: a + b,
):
    """Reduce to rank 0 then broadcast the result; every rank returns it."""
    partial = yield from reduce(ep, value, op, root=0)
    if ep.rank == 0:
        payload = yield from bcast(ep, encode_value(partial), root=0)
    else:
        payload = yield from bcast(ep, None, root=0)
    assert payload is not None
    return decode_value(payload)


# --------------------------------------------------------------------- #
# multi-lane collectives (Träff decomposition) + NIC-style barrier
# --------------------------------------------------------------------- #
def _resolve_lanes(ep: CommEndpoint, lanes: Optional[int], n_items: int) -> int:
    if lanes is None:
        lanes = getattr(ep.iface.engine.platform, "n_rails", 1)
    if lanes < 1:
        raise ApiError(f"need at least one lane, got {lanes}")
    return min(int(lanes), MAX_LANES, max(1, n_items))


def _lane_bounds(n: int, lanes: int) -> list[tuple[int, int]]:
    """Contiguous chunk boundaries: the first ``n % lanes`` lanes take one
    extra element (the Träff layout)."""
    base, extra = divmod(n, lanes)
    bounds = []
    lo = 0
    for lane in range(lanes):
        hi = lo + base + (1 if lane < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _vec_reduce(
    ep: CommEndpoint,
    vec: Sequence[float],
    op: Callable[[float, float], float],
    tag: int,
    root: int = 0,
):
    """Binomial-tree elementwise reduction of a vector to ``root``."""
    size = ep.size
    vrank = (ep.rank - root) % size
    acc = [float(v) for v in vec]
    k = 1
    while k < size:
        if vrank & k:
            parent = vrank & ~k
            yield from ep.send(encode_vector(acc), (parent + root) % size, tag)
            return None
        child = vrank | k
        if child < size:
            payload = yield from ep.recv((child + root) % size, tag)
            other = decode_vector(payload)
            if len(other) != len(acc):
                raise ApiError(
                    f"lane length mismatch: {len(other)} vs {len(acc)}"
                )
            acc = [op(a, b) for a, b in zip(acc, other)]
        k *= 2
    return acc


def _lane_allreduce(ep, chunk, op, lane, out):
    """One lane's allreduce (reduce to the lane root, then bcast); the
    result lands in ``out[lane]`` so the parent can stitch lanes back."""
    root = lane % ep.size
    reduced = yield from _vec_reduce(ep, chunk, op, TAG_LANE_REDUCE - lane, root=root)
    if ep.rank == root:
        payload = yield from bcast(
            ep, encode_vector(reduced), root=root, tag=TAG_LANE_BCAST - lane
        )
    else:
        payload = yield from bcast(ep, None, root=root, tag=TAG_LANE_BCAST - lane)
    assert payload is not None
    out[lane] = decode_vector(payload)


def multilane_allreduce(
    ep: CommEndpoint,
    values: Sequence[float],
    op: Callable[[float, float], float] = lambda a, b: a + b,
    lanes: Optional[int] = None,
):
    """Multi-lane elementwise allreduce of a float vector.

    The vector splits into ``lanes`` contiguous chunks (default: one lane
    per rail).  Each lane runs an independent binomial reduce+bcast,
    rooted at rank ``lane % size`` so the lane trees do not all converge
    on one node, and all lanes run *concurrently* as child processes of
    the calling rank — the per-lane messages are simultaneous traffic
    the engine's strategy spreads across the rails, which is the whole
    point of the Träff decomposition.  Returns the reduced vector.
    """
    values = [float(v) for v in values]
    if not values:
        raise ApiError("multilane_allreduce needs a non-empty vector")
    lanes = _resolve_lanes(ep, lanes, len(values))
    if ep.size == 1:
        return values
    out: list[Optional[list[float]]] = [None] * lanes
    if lanes == 1:
        yield from _lane_allreduce(ep, values, op, 0, out)
    else:
        from ..sim.process import AllOf, spawn

        sim = ep.iface.engine.sim
        children = [
            spawn(
                sim,
                _lane_allreduce(ep, values[lo:hi], op, lane, out),
                name=f"allreduce.lane{lane}.r{ep.rank}",
            )
            for lane, (lo, hi) in enumerate(_lane_bounds(len(values), lanes))
        ]
        yield AllOf(children)
    result: list[float] = []
    for chunk in out:
        assert chunk is not None
        result.extend(chunk)
    return result


def _lane_barrier(ep: CommEndpoint, lane: int):
    """One dissemination-barrier round set on lane ``lane``'s tag plane."""
    from ..sim.process import AllOf

    size, rank = ep.size, ep.rank
    tag = TAG_LANE_BARRIER - lane
    k = 1
    while k < size:
        dst = (rank + k) % size
        src = (rank - k) % size
        if dst == src:
            yield from ep.sendrecv(b"\x00", peer=dst, send_tag=tag)
        else:
            sreq = ep.isend(b"\x00", dst, tag)
            rreq = ep.irecv(src, tag)
            yield AllOf([sreq.completion, rreq.completion])
        k *= 2


def multilane_barrier(ep: CommEndpoint, lanes: Optional[int] = None):
    """Barrier as ``lanes`` concurrent dissemination token streams.

    Each lane is an independent dissemination barrier on its own tag
    plane; the barrier completes when every lane completes.  With one
    lane this is exactly :func:`barrier`; with more, the concurrent
    tokens give the engine simultaneous small messages to aggregate and
    balance across rails (latency-driven rail selection, paper §2).
    """
    lanes = _resolve_lanes(ep, lanes, MAX_LANES)
    if ep.size == 1:
        return
    if lanes == 1:
        yield from _lane_barrier(ep, 0)
        return
    from ..sim.process import AllOf, spawn

    sim = ep.iface.engine.sim
    children = [
        spawn(sim, _lane_barrier(ep, lane), name=f"barrier.lane{lane}.r{ep.rank}")
        for lane in range(lanes)
    ]
    yield AllOf(children)


def nic_barrier(ep: CommEndpoint, arity: int = 4):
    """K-ary combining-tree barrier (NIC-style, after Yu et al.).

    Tokens combine up an ``arity``-ary tree rooted at rank 0, then the
    release broadcasts back down the same tree.  Two messages per
    non-root rank — the traffic shape of a NIC-offloaded barrier, here
    scheduled over whichever rail the strategy picks (the fastest one,
    matching the latency-driven selection the paper's engine applies to
    small control packets).
    """
    if arity < 2:
        raise ApiError(f"nic_barrier arity must be >= 2, got {arity}")
    size, rank = ep.size, ep.rank
    if size == 1:
        return
    first_child = rank * arity + 1
    children = range(first_child, min(first_child + arity, size))
    # combine: wait for every child's token, then signal the parent
    for child in children:
        yield from ep.recv(child, TAG_NIC_BARRIER)
    if rank != 0:
        parent = (rank - 1) // arity
        yield from ep.send(b"\x00", parent, TAG_NIC_BARRIER)
        yield from ep.recv(parent, TAG_NIC_BARRIER)
    # release: wake the children back down the tree
    for child in children:
        yield from ep.send(b"\x00", child, TAG_NIC_BARRIER)
