"""Mini message-passing layer (ranks, communicators, collectives)."""

from .collectives import (
    allreduce,
    alltoall,
    barrier,
    bcast,
    decode_value,
    encode_value,
    gather,
    reduce,
    scan,
    scatter,
)
from ..core.matching import ANY_SOURCE
from .comm import CommEndpoint, Communicator

__all__ = [
    "ANY_SOURCE",
    "Communicator",
    "CommEndpoint",
    "barrier",
    "bcast",
    "gather",
    "scatter",
    "alltoall",
    "reduce",
    "allreduce",
    "scan",
    "encode_value",
    "decode_value",
]
