"""Mini message-passing layer (ranks, communicators, collectives)."""

from .collectives import (
    allreduce,
    alltoall,
    barrier,
    bcast,
    decode_value,
    decode_vector,
    encode_value,
    encode_vector,
    gather,
    multilane_allreduce,
    multilane_barrier,
    nic_barrier,
    reduce,
    scan,
    scatter,
)
from ..core.matching import ANY_SOURCE
from .comm import CommEndpoint, Communicator

__all__ = [
    "ANY_SOURCE",
    "Communicator",
    "CommEndpoint",
    "barrier",
    "bcast",
    "gather",
    "scatter",
    "alltoall",
    "reduce",
    "allreduce",
    "scan",
    "multilane_allreduce",
    "multilane_barrier",
    "nic_barrier",
    "encode_value",
    "decode_value",
    "encode_vector",
    "decode_vector",
]
