"""Generic size-sweep machinery for curve-style benchmarks.

A *curve* is (label, session factory, segment count); a *sweep* runs every
curve at every total size with a fresh session per point (strategy state
never leaks between points) and collects latency/bandwidth series — the
exact structure of the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Literal, Sequence

from ..util.errors import BenchError
from ..util.tables import Table
from ..util.units import format_size
from .pingpong import PingPongResult, run_pingpong

if TYPE_CHECKING:  # pragma: no cover
    from ..core.session import Session

__all__ = ["Curve", "SweepResult", "run_sweep", "sweep_table"]


@dataclass(frozen=True)
class Curve:
    """One line of a figure."""

    label: str
    session_factory: Callable[[], "Session"]
    segments: int = 1


@dataclass
class SweepResult:
    """All measured points of one figure sweep."""

    sizes: list[int]
    curves: list[str]
    #: results[label][size] -> PingPongResult
    results: dict[str, dict[int, PingPongResult]] = field(default_factory=dict)

    def series(
        self, label: str, metric: Literal["latency", "bandwidth"]
    ) -> list[float]:
        """One curve as a list aligned with :attr:`sizes`."""
        points = self.results[label]
        if metric == "latency":
            return [points[s].one_way_us for s in self.sizes]
        if metric == "bandwidth":
            return [points[s].bandwidth_MBps for s in self.sizes]
        raise BenchError(f"unknown metric {metric!r}")

    def point(self, label: str, size: int) -> PingPongResult:
        return self.results[label][size]


def run_sweep(
    curves: Sequence[Curve],
    sizes: Sequence[int],
    reps: int = 3,
    warmup: int = 1,
) -> SweepResult:
    """Measure every curve at every size (fresh session per point)."""
    if not curves:
        raise BenchError("no curves to sweep")
    if not sizes:
        raise BenchError("no sizes to sweep")
    labels = [c.label for c in curves]
    if len(set(labels)) != len(labels):
        raise BenchError(f"duplicate curve labels: {labels}")
    out = SweepResult(sizes=list(sizes), curves=labels)
    for curve in curves:
        points: dict[int, PingPongResult] = {}
        for size in sizes:
            if size < curve.segments:
                # e.g. 4-byte total cannot form 8 non-empty segments;
                # the paper's 4-segment curves likewise start later.
                continue
            session = curve.session_factory()
            points[size] = run_pingpong(
                session, size, segments=curve.segments, reps=reps, warmup=warmup
            )
        out.results[curve.label] = points
    # drop sizes skipped by every curve; keep ragged starts otherwise
    out.sizes = [s for s in out.sizes if any(s in out.results[l] for l in labels)]
    return out


def sweep_table(
    sweep: SweepResult,
    metric: Literal["latency", "bandwidth"],
    title: str,
    precision: int = 2,
) -> Table:
    """Render a sweep as the paper-style table: size column + one column
    per curve (latency in µs or bandwidth in MB/s)."""
    unit = "us" if metric == "latency" else "MB/s"
    table = Table(
        headers=["size"] + [f"{label} ({unit})" for label in sweep.curves],
        title=title,
        precision=precision,
    )
    for size in sweep.sizes:
        row: list[object] = [format_size(size)]
        for label in sweep.curves:
            point = sweep.results[label].get(size)
            if point is None:
                row.append(None)
            elif metric == "latency":
                row.append(point.one_way_us)
            else:
                row.append(point.bandwidth_MBps)
        table.add_row(*row)
    return table
