"""One runner per figure of the paper's evaluation (Figs 2-7).

Every runner returns a :class:`FigureResult` whose table prints the same
rows/series the paper plots.  Session construction policy (see DESIGN.md):

* Figures 2-3 (raw single-network performance) run on a *single-rail*
  platform — the library is loaded with one driver only;
* Figures 4-5 reference curves ("we force all the segments to be sent
  sequentially over a single network") run on the **two-rail** platform
  with a pinned strategy — the other NIC is present and polled;
* Figure 6 reference curves are the **NIC-only** configurations — the
  paper's discussion of the gap ("a polling operation on the Myri-10G
  NIC ... mandatory if one wants to effectively use the multi-rail
  feature") only makes sense against a session where the second NIC is
  not even loaded;
* Figure 7 compares NIC-only single-segment transfers against iso- and
  hetero-stripped transfers on the two-rail platform, with stripping
  ratios taken from init-time sampling.

Absolute values are simulation-calibrated, not testbed measurements; the
assertions that accompany each figure live in
``tests/integration/test_paper_shapes.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal, Optional, Sequence

from ..core.sampling import SampleTable, sample_rails
from ..core.session import Session
from ..hardware.presets import paper_platform, single_rail_platform
from ..hardware.spec import PlatformSpec, RailSpec
from ..util.errors import BenchError
from ..util.tables import Table
from ..util.units import KB, PAPER_BANDWIDTH_SIZES, PAPER_LATENCY_SIZES, geometric_sizes
from .sweep import Curve, SweepResult, run_sweep, sweep_table

__all__ = [
    "FigureResult",
    "fig2a",
    "fig2b",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "run_figure",
    "FIGURES",
]


@dataclass
class FigureResult:
    """A reproduced figure: its sweep data and printable table."""

    figure_id: str
    title: str
    metric: Literal["latency", "bandwidth"]
    sweep: SweepResult
    table: Table

    def render(self) -> str:
        return self.table.render()

    def plot(self, width: int = 64, height: int = 16) -> str:
        """Render the figure as a log-log ASCII plot (paper style)."""
        from ..util.asciiplot import AsciiPlot

        unit = "one-way latency (us)" if self.metric == "latency" else "bandwidth (MB/s)"
        plot = AsciiPlot(
            width=width,
            height=height,
            x_log=True,
            y_log=True,
            title=f"{self.figure_id}: {self.title}",
            y_label=unit,
        )
        for label in self.sweep.curves:
            points = self.sweep.results[label]
            sizes = [s for s in self.sweep.sizes if s in points]
            values = [
                points[s].one_way_us if self.metric == "latency" else points[s].bandwidth_MBps
                for s in sizes
            ]
            plot.add_series(label, sizes, values)
        return plot.render()

    def __str__(self) -> str:  # pragma: no cover
        return self.render()


# --------------------------------------------------------------------- #
# shared curve builders
# --------------------------------------------------------------------- #
def _single_platform_curves(rail: RailSpec) -> list[Curve]:
    """Regular / 2-seg / 4-seg, with and without aggregation (Figs 2-3)."""
    plat = single_rail_platform(rail)

    def mk(strategy: str) -> Callable[[], Session]:
        return lambda: Session(plat, strategy=strategy)

    return [
        Curve("regular", mk("single_rail"), segments=1),
        Curve("2-seg", mk("single_rail"), segments=2),
        Curve("2-seg aggregated", mk("aggreg"), segments=2),
        Curve("4-seg", mk("single_rail"), segments=4),
        Curve("4-seg aggregated", mk("aggreg"), segments=4),
    ]


def _greedy_curves(segments: int, spec: Optional[PlatformSpec] = None) -> list[Curve]:
    """Forced-single-rail aggregated references + greedy (Figs 4-5)."""
    plat = spec or paper_platform()
    mx_name, elan_name = plat.rails[0].name, plat.rails[1].name
    return [
        Curve(
            f"{segments}-seg aggregated over Myri-10G",
            lambda: Session(plat, strategy="aggreg", strategy_opts={"rail": mx_name}),
            segments=segments,
        ),
        Curve(
            f"{segments}-seg aggregated over Quadrics",
            lambda: Session(plat, strategy="aggreg", strategy_opts={"rail": elan_name}),
            segments=segments,
        ),
        Curve(
            f"{segments}-seg dynamically balanced",
            lambda: Session(plat, strategy="greedy"),
            segments=segments,
        ),
    ]


def _figure(
    figure_id: str,
    title: str,
    metric: Literal["latency", "bandwidth"],
    curves: Sequence[Curve],
    sizes: Sequence[int],
    reps: int,
) -> FigureResult:
    sweep = run_sweep(curves, sizes, reps=reps)
    table = sweep_table(sweep, metric, title=f"{figure_id}: {title}")
    return FigureResult(figure_id, title, metric, sweep, table)


# --------------------------------------------------------------------- #
# Figures 2-3: raw single-network performance, multi-segment messages
# --------------------------------------------------------------------- #
def fig2a(sizes: Optional[Sequence[int]] = None, reps: int = 3) -> FigureResult:
    """Fig 2(a): NewMadeleine over Myri-10G — latency."""
    from ..hardware.presets import MYRI_10G

    return _figure(
        "fig2a",
        "Myri-10G latency, regular vs multi-segment (+aggregation)",
        "latency",
        _single_platform_curves(MYRI_10G),
        sizes or PAPER_LATENCY_SIZES,
        reps,
    )


def fig2b(sizes: Optional[Sequence[int]] = None, reps: int = 3) -> FigureResult:
    """Fig 2(b): NewMadeleine over Myri-10G — bandwidth."""
    from ..hardware.presets import MYRI_10G

    return _figure(
        "fig2b",
        "Myri-10G bandwidth, regular vs multi-segment (+aggregation)",
        "bandwidth",
        _single_platform_curves(MYRI_10G),
        sizes or PAPER_BANDWIDTH_SIZES,
        reps,
    )


def fig3a(sizes: Optional[Sequence[int]] = None, reps: int = 3) -> FigureResult:
    """Fig 3(a): NewMadeleine over Quadrics — latency."""
    from ..hardware.presets import QUADRICS_QM500

    return _figure(
        "fig3a",
        "Quadrics latency, regular vs multi-segment (+aggregation)",
        "latency",
        _single_platform_curves(QUADRICS_QM500),
        sizes or PAPER_LATENCY_SIZES,
        reps,
    )


def fig3b(sizes: Optional[Sequence[int]] = None, reps: int = 3) -> FigureResult:
    """Fig 3(b): NewMadeleine over Quadrics — bandwidth."""
    from ..hardware.presets import QUADRICS_QM500

    return _figure(
        "fig3b",
        "Quadrics bandwidth, regular vs multi-segment (+aggregation)",
        "bandwidth",
        _single_platform_curves(QUADRICS_QM500),
        sizes or PAPER_BANDWIDTH_SIZES,
        reps,
    )


# --------------------------------------------------------------------- #
# Figures 4-5: greedy balancing
# --------------------------------------------------------------------- #
def fig4a(sizes: Optional[Sequence[int]] = None, reps: int = 3) -> FigureResult:
    """Fig 4(a): greedy balancing, 2-segment messages — latency."""
    return _figure(
        "fig4a",
        "Greedy balancing with 2-segment messages — latency",
        "latency",
        _greedy_curves(2),
        sizes or geometric_sizes(4, 16 * KB),
        reps,
    )


def fig4b(sizes: Optional[Sequence[int]] = None, reps: int = 3) -> FigureResult:
    """Fig 4(b): greedy balancing, 2-segment messages — bandwidth."""
    return _figure(
        "fig4b",
        "Greedy balancing with 2-segment messages — bandwidth",
        "bandwidth",
        _greedy_curves(2),
        sizes or PAPER_BANDWIDTH_SIZES,
        reps,
    )


def fig5a(sizes: Optional[Sequence[int]] = None, reps: int = 3) -> FigureResult:
    """Fig 5(a): greedy balancing, 4-segment messages — latency."""
    return _figure(
        "fig5a",
        "Greedy balancing with 4-segment messages — latency",
        "latency",
        _greedy_curves(4),
        sizes or geometric_sizes(16, 16 * KB),
        reps,
    )


def fig5b(sizes: Optional[Sequence[int]] = None, reps: int = 3) -> FigureResult:
    """Fig 5(b): greedy balancing, 4-segment messages — bandwidth."""
    return _figure(
        "fig5b",
        "Greedy balancing with 4-segment messages — bandwidth",
        "bandwidth",
        _greedy_curves(4),
        sizes or PAPER_BANDWIDTH_SIZES,
        reps,
    )


# --------------------------------------------------------------------- #
# Figure 6: aggregation on the fastest NIC + balanced large messages
# --------------------------------------------------------------------- #
def fig6(sizes: Optional[Sequence[int]] = None, reps: int = 3) -> FigureResult:
    """Fig 6: aggregated eager messages on the fastest NIC — latency.

    References are NIC-only sessions; the "dynamically balanced" curve is
    ``aggreg_multirail`` on the two-rail platform and sits a constant
    idle-NIC poll above the Quadrics-only curve.
    """
    plat = paper_platform()
    mx, elan = plat.rails[0], plat.rails[1]
    curves = [
        Curve(
            "2-seg aggregated over Myri-10G (NIC-only)",
            lambda: Session(single_rail_platform(mx), strategy="aggreg"),
            segments=2,
        ),
        Curve(
            "2-seg aggregated over Quadrics (NIC-only)",
            lambda: Session(single_rail_platform(elan), strategy="aggreg"),
            segments=2,
        ),
        Curve(
            "2-seg dynamically balanced",
            lambda: Session(plat, strategy="aggreg_multirail"),
            segments=2,
        ),
    ]
    return _figure(
        "fig6",
        "Aggregated eager on fastest NIC, balanced large — latency",
        "latency",
        curves,
        sizes or PAPER_LATENCY_SIZES,
        reps,
    )


# --------------------------------------------------------------------- #
# Figure 7: packet stripping with adaptive threshold
# --------------------------------------------------------------------- #
def fig7(
    sizes: Optional[Sequence[int]] = None,
    reps: int = 3,
    samples: Optional[SampleTable] = None,
) -> FigureResult:
    """Fig 7: packet stripping with adaptive threshold — bandwidth.

    The hetero-split ratios come from init-time sampling (run once here
    and shared across the sweep, like NewMadeleine samples once at
    initialization); the iso-split curve forces a 50/50 ratio.
    """
    plat = paper_platform()
    mx, elan = plat.rails[0], plat.rails[1]
    table = samples if samples is not None else sample_rails(plat)
    curves = [
        Curve(
            "1 segment over Myri-10G",
            lambda: Session(single_rail_platform(mx), strategy="single_rail"),
        ),
        Curve(
            "1 segment over Quadrics",
            lambda: Session(single_rail_platform(elan), strategy="single_rail"),
        ),
        Curve(
            "iso-split over both",
            lambda: Session(
                plat,
                strategy="split_balance",
                strategy_opts={"ratio_mode": "iso"},
                samples=table,
            ),
        ),
        Curve(
            "hetero-split over both",
            lambda: Session(plat, strategy="split_balance", samples=table),
        ),
    ]
    return _figure(
        "fig7",
        "Packet stripping with adaptive threshold — bandwidth",
        "bandwidth",
        curves,
        sizes or PAPER_BANDWIDTH_SIZES,
        reps,
    )


#: registry used by ``run_figure`` and the benchmark files.
FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig2a": fig2a,
    "fig2b": fig2b,
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6": fig6,
    "fig7": fig7,
}


def run_figure(figure_id: str, **kwargs) -> FigureResult:
    """Run one paper figure by id (``"fig2a"`` ... ``"fig7"``)."""
    try:
        runner = FIGURES[figure_id]
    except KeyError:
        raise BenchError(
            f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}"
        ) from None
    return runner(**kwargs)
