"""One runner per figure of the paper's evaluation (Figs 2-7).

Every runner returns a :class:`FigureResult` whose table prints the same
rows/series the paper plots.  Session construction policy (see DESIGN.md):

* Figures 2-3 (raw single-network performance) run on a *single-rail*
  platform — the library is loaded with one driver only;
* Figures 4-5 reference curves ("we force all the segments to be sent
  sequentially over a single network") run on the **two-rail** platform
  with a pinned strategy — the other NIC is present and polled;
* Figure 6 reference curves are the **NIC-only** configurations — the
  paper's discussion of the gap ("a polling operation on the Myri-10G
  NIC ... mandatory if one wants to effectively use the multi-rail
  feature") only makes sense against a session where the second NIC is
  not even loaded;
* Figure 7 compares NIC-only single-segment transfers against iso- and
  hetero-stripped transfers on the two-rail platform, with stripping
  ratios taken from init-time sampling.

Figures are described by a :class:`FigurePlan` (curves + sizes) that is
*rebuildable from its id alone*: the parallel sweep runner
(:mod:`repro.obs.runner`) ships only ``(figure_id, label, size)`` tuples
to worker processes, which reconstruct the plan locally — session
factories hold simulator closures and are deliberately never pickled.
A plan built with a caller-supplied :class:`SampleTable` is marked
non-portable and always runs serially.

Absolute values are simulation-calibrated, not testbed measurements; the
assertions that accompany each figure live in
``tests/integration/test_paper_shapes.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal, Optional, Sequence

from ..core.sampling import SampleTable, sample_rails
from ..core.session import Session
from ..hardware.presets import paper_platform, single_rail_platform
from ..hardware.spec import PlatformSpec, RailSpec
from ..util.errors import BenchError
from ..util.tables import Table
from ..util.units import KB, PAPER_BANDWIDTH_SIZES, PAPER_LATENCY_SIZES, geometric_sizes
from .sweep import Curve, SweepResult, run_sweep, sweep_table

__all__ = [
    "FigurePlan",
    "FigureResult",
    "figure_plan",
    "run_plan",
    "fig2a",
    "fig2b",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "run_figure",
    "FIGURES",
]


@dataclass(frozen=True)
class FigurePlan:
    """Everything needed to measure one figure (before any simulation).

    ``portable`` means a worker process can rebuild an identical plan
    from ``figure_id`` alone (all inputs are deterministic defaults);
    only portable plans may be fanned out by the parallel runner.
    """

    figure_id: str
    title: str
    metric: Literal["latency", "bandwidth"]
    curves: tuple[Curve, ...]
    sizes: tuple[int, ...]
    portable: bool = True


@dataclass
class FigureResult:
    """A reproduced figure: its sweep data and printable table."""

    figure_id: str
    title: str
    metric: Literal["latency", "bandwidth"]
    sweep: SweepResult
    table: Table

    def render(self) -> str:
        return self.table.render()

    def plot(self, width: int = 64, height: int = 16) -> str:
        """Render the figure as a log-log ASCII plot (paper style)."""
        from ..util.asciiplot import AsciiPlot

        unit = "one-way latency (us)" if self.metric == "latency" else "bandwidth (MB/s)"
        plot = AsciiPlot(
            width=width,
            height=height,
            x_log=True,
            y_log=True,
            title=f"{self.figure_id}: {self.title}",
            y_label=unit,
        )
        for label in self.sweep.curves:
            points = self.sweep.results[label]
            sizes = [s for s in self.sweep.sizes if s in points]
            values = [
                points[s].one_way_us if self.metric == "latency" else points[s].bandwidth_MBps
                for s in sizes
            ]
            plot.add_series(label, sizes, values)
        return plot.render()

    def __str__(self) -> str:  # pragma: no cover
        return self.render()


# --------------------------------------------------------------------- #
# shared curve builders
# --------------------------------------------------------------------- #
def _single_platform_curves(rail: RailSpec) -> tuple[Curve, ...]:
    """Regular / 2-seg / 4-seg, with and without aggregation (Figs 2-3)."""
    plat = single_rail_platform(rail)

    def mk(strategy: str) -> Callable[[], Session]:
        return lambda: Session(plat, strategy=strategy)

    return (
        Curve("regular", mk("single_rail"), segments=1),
        Curve("2-seg", mk("single_rail"), segments=2),
        Curve("2-seg aggregated", mk("aggreg"), segments=2),
        Curve("4-seg", mk("single_rail"), segments=4),
        Curve("4-seg aggregated", mk("aggreg"), segments=4),
    )


def _greedy_curves(segments: int, spec: Optional[PlatformSpec] = None) -> tuple[Curve, ...]:
    """Forced-single-rail aggregated references + greedy (Figs 4-5)."""
    plat = spec or paper_platform()
    mx_name, elan_name = plat.rails[0].name, plat.rails[1].name
    return (
        Curve(
            f"{segments}-seg aggregated over Myri-10G",
            lambda: Session(plat, strategy="aggreg", strategy_opts={"rail": mx_name}),
            segments=segments,
        ),
        Curve(
            f"{segments}-seg aggregated over Quadrics",
            lambda: Session(plat, strategy="aggreg", strategy_opts={"rail": elan_name}),
            segments=segments,
        ),
        Curve(
            f"{segments}-seg dynamically balanced",
            lambda: Session(plat, strategy="greedy"),
            segments=segments,
        ),
    )


# --------------------------------------------------------------------- #
# Figures 2-3: raw single-network performance, multi-segment messages
# --------------------------------------------------------------------- #
def _plan_fig2a(sizes: Optional[Sequence[int]] = None) -> FigurePlan:
    from ..hardware.presets import MYRI_10G

    return FigurePlan(
        "fig2a",
        "Myri-10G latency, regular vs multi-segment (+aggregation)",
        "latency",
        _single_platform_curves(MYRI_10G),
        tuple(sizes or PAPER_LATENCY_SIZES),
    )


def _plan_fig2b(sizes: Optional[Sequence[int]] = None) -> FigurePlan:
    from ..hardware.presets import MYRI_10G

    return FigurePlan(
        "fig2b",
        "Myri-10G bandwidth, regular vs multi-segment (+aggregation)",
        "bandwidth",
        _single_platform_curves(MYRI_10G),
        tuple(sizes or PAPER_BANDWIDTH_SIZES),
    )


def _plan_fig3a(sizes: Optional[Sequence[int]] = None) -> FigurePlan:
    from ..hardware.presets import QUADRICS_QM500

    return FigurePlan(
        "fig3a",
        "Quadrics latency, regular vs multi-segment (+aggregation)",
        "latency",
        _single_platform_curves(QUADRICS_QM500),
        tuple(sizes or PAPER_LATENCY_SIZES),
    )


def _plan_fig3b(sizes: Optional[Sequence[int]] = None) -> FigurePlan:
    from ..hardware.presets import QUADRICS_QM500

    return FigurePlan(
        "fig3b",
        "Quadrics bandwidth, regular vs multi-segment (+aggregation)",
        "bandwidth",
        _single_platform_curves(QUADRICS_QM500),
        tuple(sizes or PAPER_BANDWIDTH_SIZES),
    )


# --------------------------------------------------------------------- #
# Figures 4-5: greedy balancing
# --------------------------------------------------------------------- #
def _plan_fig4a(sizes: Optional[Sequence[int]] = None) -> FigurePlan:
    return FigurePlan(
        "fig4a",
        "Greedy balancing with 2-segment messages — latency",
        "latency",
        _greedy_curves(2),
        tuple(sizes or geometric_sizes(4, 16 * KB)),
    )


def _plan_fig4b(sizes: Optional[Sequence[int]] = None) -> FigurePlan:
    return FigurePlan(
        "fig4b",
        "Greedy balancing with 2-segment messages — bandwidth",
        "bandwidth",
        _greedy_curves(2),
        tuple(sizes or PAPER_BANDWIDTH_SIZES),
    )


def _plan_fig5a(sizes: Optional[Sequence[int]] = None) -> FigurePlan:
    return FigurePlan(
        "fig5a",
        "Greedy balancing with 4-segment messages — latency",
        "latency",
        _greedy_curves(4),
        tuple(sizes or geometric_sizes(16, 16 * KB)),
    )


def _plan_fig5b(sizes: Optional[Sequence[int]] = None) -> FigurePlan:
    return FigurePlan(
        "fig5b",
        "Greedy balancing with 4-segment messages — bandwidth",
        "bandwidth",
        _greedy_curves(4),
        tuple(sizes or PAPER_BANDWIDTH_SIZES),
    )


# --------------------------------------------------------------------- #
# Figure 6: aggregation on the fastest NIC + balanced large messages
# --------------------------------------------------------------------- #
def _plan_fig6(sizes: Optional[Sequence[int]] = None) -> FigurePlan:
    plat = paper_platform()
    mx, elan = plat.rails[0], plat.rails[1]
    curves = (
        Curve(
            "2-seg aggregated over Myri-10G (NIC-only)",
            lambda: Session(single_rail_platform(mx), strategy="aggreg"),
            segments=2,
        ),
        Curve(
            "2-seg aggregated over Quadrics (NIC-only)",
            lambda: Session(single_rail_platform(elan), strategy="aggreg"),
            segments=2,
        ),
        Curve(
            "2-seg dynamically balanced",
            lambda: Session(plat, strategy="aggreg_multirail"),
            segments=2,
        ),
    )
    return FigurePlan(
        "fig6",
        "Aggregated eager on fastest NIC, balanced large — latency",
        "latency",
        curves,
        tuple(sizes or PAPER_LATENCY_SIZES),
    )


# --------------------------------------------------------------------- #
# Figure 7: packet stripping with adaptive threshold
# --------------------------------------------------------------------- #
def _plan_fig7(
    sizes: Optional[Sequence[int]] = None,
    samples: Optional[SampleTable] = None,
) -> FigurePlan:
    plat = paper_platform()
    mx, elan = plat.rails[0], plat.rails[1]
    # Default sampling is deterministic (same table in every process), so
    # the plan stays portable; an externally built table cannot be
    # reconstructed by a worker and pins the plan to serial execution.
    portable = samples is None
    table = samples if samples is not None else sample_rails(plat)
    curves = (
        Curve(
            "1 segment over Myri-10G",
            lambda: Session(single_rail_platform(mx), strategy="single_rail"),
        ),
        Curve(
            "1 segment over Quadrics",
            lambda: Session(single_rail_platform(elan), strategy="single_rail"),
        ),
        Curve(
            "iso-split over both",
            lambda: Session(
                plat,
                strategy="split_balance",
                strategy_opts={"ratio_mode": "iso"},
                samples=table,
            ),
        ),
        Curve(
            "hetero-split over both",
            lambda: Session(plat, strategy="split_balance", samples=table),
        ),
    )
    return FigurePlan(
        "fig7",
        "Packet stripping with adaptive threshold — bandwidth",
        "bandwidth",
        curves,
        tuple(sizes or PAPER_BANDWIDTH_SIZES),
        portable=portable,
    )


#: plan builders, keyed by figure id (fig7 additionally takes ``samples``).
_PLANS: dict[str, Callable[..., FigurePlan]] = {
    "fig2a": _plan_fig2a,
    "fig2b": _plan_fig2b,
    "fig3a": _plan_fig3a,
    "fig3b": _plan_fig3b,
    "fig4a": _plan_fig4a,
    "fig4b": _plan_fig4b,
    "fig5a": _plan_fig5a,
    "fig5b": _plan_fig5b,
    "fig6": _plan_fig6,
    "fig7": _plan_fig7,
}


def figure_plan(
    figure_id: str,
    sizes: Optional[Sequence[int]] = None,
    samples: Optional[SampleTable] = None,
) -> FigurePlan:
    """Build the measurement plan for one paper figure by id."""
    try:
        builder = _PLANS[figure_id]
    except KeyError:
        raise BenchError(
            f"unknown figure {figure_id!r}; available: {sorted(_PLANS)}"
        ) from None
    if figure_id == "fig7":
        return builder(sizes=sizes, samples=samples)
    if samples is not None:
        raise BenchError(f"{figure_id} does not take init-time samples")
    return builder(sizes=sizes)


def run_plan(
    plan: FigurePlan,
    reps: int = 3,
    warmup: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Measure a plan, optionally fanning points out over worker processes.

    ``jobs=None`` or ``1`` runs in-process; anything larger uses
    :func:`repro.obs.runner.run_sweep_parallel` when the plan is portable
    (results are bit-identical either way — each point is an isolated
    simulator).  Non-portable plans silently run serially.
    """
    from ..obs.runner import resolve_jobs

    n_jobs = resolve_jobs(jobs)
    if n_jobs > 1 and plan.portable:
        from ..obs.runner import run_sweep_parallel

        sweep = run_sweep_parallel(plan, reps=reps, warmup=warmup, jobs=n_jobs)
    else:
        sweep = run_sweep(plan.curves, plan.sizes, reps=reps, warmup=warmup)
    table = sweep_table(sweep, plan.metric, title=f"{plan.figure_id}: {plan.title}")
    return FigureResult(plan.figure_id, plan.title, plan.metric, sweep, table)


# --------------------------------------------------------------------- #
# per-figure entry points (thin wrappers over plans, kept for callers)
# --------------------------------------------------------------------- #
def fig2a(
    sizes: Optional[Sequence[int]] = None, reps: int = 3, jobs: Optional[int] = None
) -> FigureResult:
    """Fig 2(a): NewMadeleine over Myri-10G — latency."""
    return run_plan(figure_plan("fig2a", sizes=sizes), reps=reps, jobs=jobs)


def fig2b(
    sizes: Optional[Sequence[int]] = None, reps: int = 3, jobs: Optional[int] = None
) -> FigureResult:
    """Fig 2(b): NewMadeleine over Myri-10G — bandwidth."""
    return run_plan(figure_plan("fig2b", sizes=sizes), reps=reps, jobs=jobs)


def fig3a(
    sizes: Optional[Sequence[int]] = None, reps: int = 3, jobs: Optional[int] = None
) -> FigureResult:
    """Fig 3(a): NewMadeleine over Quadrics — latency."""
    return run_plan(figure_plan("fig3a", sizes=sizes), reps=reps, jobs=jobs)


def fig3b(
    sizes: Optional[Sequence[int]] = None, reps: int = 3, jobs: Optional[int] = None
) -> FigureResult:
    """Fig 3(b): NewMadeleine over Quadrics — bandwidth."""
    return run_plan(figure_plan("fig3b", sizes=sizes), reps=reps, jobs=jobs)


def fig4a(
    sizes: Optional[Sequence[int]] = None, reps: int = 3, jobs: Optional[int] = None
) -> FigureResult:
    """Fig 4(a): greedy balancing, 2-segment messages — latency."""
    return run_plan(figure_plan("fig4a", sizes=sizes), reps=reps, jobs=jobs)


def fig4b(
    sizes: Optional[Sequence[int]] = None, reps: int = 3, jobs: Optional[int] = None
) -> FigureResult:
    """Fig 4(b): greedy balancing, 2-segment messages — bandwidth."""
    return run_plan(figure_plan("fig4b", sizes=sizes), reps=reps, jobs=jobs)


def fig5a(
    sizes: Optional[Sequence[int]] = None, reps: int = 3, jobs: Optional[int] = None
) -> FigureResult:
    """Fig 5(a): greedy balancing, 4-segment messages — latency."""
    return run_plan(figure_plan("fig5a", sizes=sizes), reps=reps, jobs=jobs)


def fig5b(
    sizes: Optional[Sequence[int]] = None, reps: int = 3, jobs: Optional[int] = None
) -> FigureResult:
    """Fig 5(b): greedy balancing, 4-segment messages — bandwidth."""
    return run_plan(figure_plan("fig5b", sizes=sizes), reps=reps, jobs=jobs)


def fig6(
    sizes: Optional[Sequence[int]] = None, reps: int = 3, jobs: Optional[int] = None
) -> FigureResult:
    """Fig 6: aggregated eager messages on the fastest NIC — latency.

    References are NIC-only sessions; the "dynamically balanced" curve is
    ``aggreg_multirail`` on the two-rail platform and sits a constant
    idle-NIC poll above the Quadrics-only curve.
    """
    return run_plan(figure_plan("fig6", sizes=sizes), reps=reps, jobs=jobs)


def fig7(
    sizes: Optional[Sequence[int]] = None,
    reps: int = 3,
    samples: Optional[SampleTable] = None,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Fig 7: packet stripping with adaptive threshold — bandwidth.

    The hetero-split ratios come from init-time sampling (run once here
    and shared across the sweep, like NewMadeleine samples once at
    initialization); the iso-split curve forces a 50/50 ratio.
    """
    return run_plan(figure_plan("fig7", sizes=sizes, samples=samples), reps=reps, jobs=jobs)


#: registry used by ``run_figure`` and the benchmark files.
FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig2a": fig2a,
    "fig2b": fig2b,
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6": fig6,
    "fig7": fig7,
}


def run_figure(figure_id: str, **kwargs) -> FigureResult:
    """Run one paper figure by id (``"fig2a"`` ... ``"fig7"``).

    Accepts the figure runner's keyword arguments (``sizes``, ``reps``,
    ``jobs``; ``samples`` for fig7).
    """
    try:
        runner = FIGURES[figure_id]
    except KeyError:
        raise BenchError(
            f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}"
        ) from None
    return runner(**kwargs)
