"""The paper's benchmark: a multi-segment non-blocking ping-pong (§3.1).

"The benchmark is a regular ping-pong program where the send (resp. recv)
sequence is a serie of non-blocking send (resp. non-blocking recv)
operations.  We compare the transfer of regular messages (composed of a
single contiguous memory segment) with the transfer of messages composed
of multiple segments of the same size."

The reported *total data size* is the accumulated size of all segments,
exactly like the figures' x axes; latency is one-way time (RTT/2),
bandwidth is ``total_size / one_way``.

The simulation is deterministic, so a handful of repetitions (after
warm-up rounds that populate connection state) is enough; repetitions
still matter because strategy state (e.g. which NIC was grabbed first)
can alternate between rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

from ..sim.process import AllOf, Timeout, spawn
from ..util.errors import BenchError
from ..util.units import bandwidth_MBps

if TYPE_CHECKING:  # pragma: no cover
    from ..core.session import Session

__all__ = ["PingPongResult", "run_pingpong", "split_even"]

#: tag used by the benchmark's logical channel.
BENCH_TAG = 7


@dataclass(frozen=True)
class PingPongResult:
    """One measured point of a ping-pong sweep."""

    total_size: int
    segments: int
    reps: int
    one_way_us: float

    @property
    def bandwidth_MBps(self) -> float:
        return bandwidth_MBps(self.total_size, self.one_way_us)

    @property
    def rtt_us(self) -> float:
        return 2.0 * self.one_way_us


def split_even(total: int, parts: int) -> list[int]:
    """Split ``total`` bytes into ``parts`` near-equal segment sizes.

    The paper uses segments "of the same size"; when the total is not
    divisible the remainder goes to the first segments (every segment
    stays within one byte of the others).

    >>> split_even(10, 4)
    [3, 3, 2, 2]
    """
    if parts < 1:
        raise BenchError(f"need >= 1 segment, got {parts}")
    if total < parts:
        raise BenchError(f"cannot split {total} bytes into {parts} non-empty segments")
    base, rem = divmod(total, parts)
    return [base + 1 if i < rem else base for i in range(parts)]


def run_pingpong(
    session: "Session",
    size: int,
    segments: int = 1,
    reps: int = 5,
    warmup: int = 2,
    tag: int = BENCH_TAG,
    payload_factory: Optional[Callable[[int], Union[bytes, int]]] = None,
    node_a: int = 0,
    node_b: int = 1,
    inter_segment_gap_us: float = 0.0,
) -> PingPongResult:
    """Run a ping-pong of ``size`` total bytes in ``segments`` pieces.

    ``payload_factory(seg_size)`` produces each segment's payload; the
    default is a virtual (size-only) payload, which is what the benchmark
    sweeps use.  Integration tests pass real bytes to also verify
    integrity end to end.

    ``inter_segment_gap_us`` inserts idle time between consecutive
    non-blocking sends — used by the optimization-window ablation: with a
    gap, each segment has usually left before the next is submitted, so
    opportunistic aggregation finds an empty backlog.

    The session must be freshly built or previously drained; the function
    runs the simulator until both benchmark processes finish.
    """
    if reps < 1 or warmup < 0:
        raise BenchError(f"bad reps/warmup: {reps}/{warmup}")
    if inter_segment_gap_us < 0:
        raise BenchError(f"negative inter-segment gap {inter_segment_gap_us}")
    seg_sizes = split_even(size, segments)
    make_payload = payload_factory or (lambda n: n)
    iface_a = session.interface(node_a)
    iface_b = session.interface(node_b)
    sim = session.sim
    timing: dict[str, float] = {}

    def submit_all(iface, peer):
        sends = []
        for k, s in enumerate(seg_sizes):
            if inter_segment_gap_us > 0 and k > 0:
                yield Timeout(inter_segment_gap_us)
            sends.append(iface.isend(peer, tag, make_payload(s)))
        return sends

    def ping() -> object:
        for i in range(warmup + reps):
            if i == warmup:
                timing["t0"] = sim.now
            sends = yield from submit_all(iface_a, node_b)
            recvs = [iface_a.irecv(node_b, tag) for _ in seg_sizes]
            yield AllOf([r.completion for r in recvs] + [s.completion for s in sends])
        timing["t1"] = sim.now
        return None

    def pong() -> object:
        for _ in range(warmup + reps):
            recvs = [iface_b.irecv(node_a, tag) for _ in seg_sizes]
            yield AllOf([r.completion for r in recvs])
            sends = yield from submit_all(iface_b, node_a)
            yield AllOf([s.completion for s in sends])
        return None

    ping_proc = spawn(sim, ping(), name="pingpong.ping")
    pong_proc = spawn(sim, pong(), name="pingpong.pong")
    session.run_until_idle()
    if not (ping_proc.done and pong_proc.done):
        raise BenchError(
            f"ping-pong deadlocked: ping done={ping_proc.done},"
            f" pong done={pong_proc.done} at t={sim.now:.2f}us"
        )
    elapsed = timing["t1"] - timing["t0"]
    if elapsed <= 0:
        raise BenchError("ping-pong measured non-positive elapsed time")
    one_way = elapsed / (2.0 * reps)
    return PingPongResult(total_size=size, segments=segments, reps=reps, one_way_us=one_way)
