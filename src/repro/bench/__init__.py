"""Benchmark harness: ping-pong, sweeps, and one runner per paper figure."""

from .ablations import (
    ablation_bus_capacity,
    ablation_eager_threshold,
    ablation_parallel_pio,
    ablation_poll_cost,
    ablation_split_ratio,
    ablation_window,
)
from .extensions import ext_heterogeneous_mix, ext_parallel_pio_latency, ext_rail_scaling
from .figures import FIGURES, FigureResult, run_figure
from .flood import FloodResult, run_flood
from .pingpong import BENCH_TAG, PingPongResult, run_pingpong, split_even
from .reporting import report_figure, report_table, write_reports
from .scale import (
    DEFAULT_POINTS,
    SCALE_ALGOS,
    ScaleResult,
    run_collective,
    run_scale_suite,
)
from .sweep import Curve, SweepResult, run_sweep, sweep_table
from .tracing import TRACE_TARGETS, TraceTarget, resolve_trace_target, run_traced

__all__ = [
    "run_pingpong",
    "run_flood",
    "FloodResult",
    "PingPongResult",
    "split_even",
    "BENCH_TAG",
    "Curve",
    "SweepResult",
    "run_sweep",
    "sweep_table",
    "FigureResult",
    "FIGURES",
    "run_figure",
    "report_figure",
    "report_table",
    "write_reports",
    "ablation_poll_cost",
    "ablation_eager_threshold",
    "ablation_bus_capacity",
    "ablation_window",
    "ablation_split_ratio",
    "ablation_parallel_pio",
    "ext_rail_scaling",
    "ext_heterogeneous_mix",
    "ext_parallel_pio_latency",
    "TraceTarget",
    "TRACE_TARGETS",
    "resolve_trace_target",
    "run_traced",
    "SCALE_ALGOS",
    "DEFAULT_POINTS",
    "ScaleResult",
    "run_collective",
    "run_scale_suite",
]
