"""Sweep analysis: peaks, speedups, crossover detection.

The paper's qualitative claims are statements about *curve relations* —
"greedy pays off above 16 KB", "hetero-split beats iso-split", "maximum
aggregated bandwidth 1675 MB/s".  These helpers extract exactly those
relations from a :class:`~repro.bench.sweep.SweepResult` so that the
EXPERIMENTS.md generator and the shape tests share one implementation.
"""

from __future__ import annotations

from typing import Literal, Optional

from ..util.errors import BenchError
from .sweep import SweepResult

__all__ = ["peak", "value_at", "speedup_series", "find_crossover", "dominance_share"]

Metric = Literal["latency", "bandwidth"]


def _metric_value(sweep: SweepResult, label: str, size: int, metric: Metric) -> Optional[float]:
    point = sweep.results[label].get(size)
    if point is None:
        return None
    return point.one_way_us if metric == "latency" else point.bandwidth_MBps


def value_at(sweep: SweepResult, label: str, size: int, metric: Metric) -> float:
    """The metric of one curve at one size; raises if not measured."""
    v = _metric_value(sweep, label, size, metric)
    if v is None:
        raise BenchError(f"curve {label!r} has no point at size {size}")
    return v


def peak(sweep: SweepResult, label: str, metric: Metric = "bandwidth") -> tuple[int, float]:
    """``(size, value)`` of the curve's best point (max bandwidth or min
    latency)."""
    if label not in sweep.results:
        raise BenchError(f"unknown curve {label!r}; have {sweep.curves}")
    items = [
        (s, _metric_value(sweep, label, s, metric))
        for s in sweep.sizes
        if _metric_value(sweep, label, s, metric) is not None
    ]
    if not items:
        raise BenchError(f"curve {label!r} is empty")
    if metric == "bandwidth":
        return max(items, key=lambda kv: kv[1])
    return min(items, key=lambda kv: kv[1])


def speedup_series(
    sweep: SweepResult, subject: str, baseline: str, metric: Metric = "bandwidth"
) -> list[tuple[int, float]]:
    """Per-size advantage of ``subject`` over ``baseline``.

    Values > 1 mean the subject wins (higher bandwidth / lower latency).
    Sizes missing from either curve are skipped.
    """
    out = []
    for size in sweep.sizes:
        a = _metric_value(sweep, subject, size, metric)
        b = _metric_value(sweep, baseline, size, metric)
        if a is None or b is None:
            continue
        out.append((size, b / a if metric == "latency" else a / b))
    if not out:
        raise BenchError(f"no common sizes between {subject!r} and {baseline!r}")
    return out


def find_crossover(
    sweep: SweepResult,
    subject: str,
    baseline: str,
    metric: Metric = "bandwidth",
    margin: float = 1.0,
) -> Optional[int]:
    """Smallest size from which ``subject`` beats ``baseline`` *and keeps
    winning* for the rest of the sweep (by a factor of at least
    ``margin``).  None if it never durably wins.
    """
    series = speedup_series(sweep, subject, baseline, metric)
    for i, (size, _gain) in enumerate(series):
        if all(g > margin for _s, g in series[i:]):
            return size
    return None


def dominance_share(
    sweep: SweepResult, subject: str, baseline: str, metric: Metric = "bandwidth"
) -> float:
    """Fraction of measured sizes at which the subject wins."""
    series = speedup_series(sweep, subject, baseline, metric)
    return sum(1 for _s, g in series if g > 1.0) / len(series)
