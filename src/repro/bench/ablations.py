"""Ablations of the design choices DESIGN.md §6 calls out.

Each ablation returns a printable :class:`~repro.util.tables.Table` whose
rows vary exactly one knob and whose columns show the affected headline
metric, isolating the mechanism behind each paper claim:

* :func:`ablation_poll_cost` — the Fig 6 gap *is* the idle-NIC poll: the
  multi-rail small-message latency rises linearly with the Myri-10G poll
  cost while the Quadrics-only reference stays put;
* :func:`ablation_eager_threshold` — the multi-rail payoff boundary (Figs
  4-5) tracks the PIO threshold: raising it delays the crossover, because
  PIO sends serialize on the CPU;
* :func:`ablation_bus_capacity` — the aggregated-bandwidth ceiling (1675
  MB/s in the paper) follows the I/O-bus capacity until the sum of NIC
  rates becomes the binding constraint;
* :func:`ablation_window` — the optimization window: spacing out the
  non-blocking sends empties the backlog the NIC-idle consultation sees,
  and the aggregation benefit decays to nothing (NewMadeleine's engine
  only optimizes what has accumulated);
* :func:`ablation_split_ratio` — bandwidth of a forced split ratio vs the
  sampled one: the sampled ratio sits at the optimum.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..core.sampling import SampleTable, sample_rails
from ..core.session import Session
from ..hardware.presets import paper_platform, single_rail_platform
from ..util.tables import Table
from ..util.units import KB, MB, format_size
from .pingpong import run_pingpong

__all__ = [
    "ablation_poll_cost",
    "ablation_eager_threshold",
    "ablation_bus_capacity",
    "ablation_window",
    "ablation_split_ratio",
    "ablation_parallel_pio",
]


def ablation_poll_cost(
    poll_costs_us: Sequence[float] = (0.0, 0.2, 0.35, 0.5, 1.0, 2.0),
    size: int = 4,
    reps: int = 3,
) -> Table:
    """Small-message multi-rail latency vs the idle Myri-10G poll cost."""
    base = paper_platform()
    elan = base.rails[1]
    ref = run_pingpong(
        Session(single_rail_platform(elan), strategy="aggreg"), size, segments=2, reps=reps
    )
    table = Table(
        ["mx poll cost (us)", "multirail latency (us)", "quadrics-only (us)", "gap (us)"],
        title=f"Ablation: idle-NIC poll cost ({format_size(size)} 2-seg, Fig 6 mechanism)",
    )
    for cost in poll_costs_us:
        mx = base.rails[0].replace(poll_cost_us=cost)
        plat = base.with_rails([mx, elan])
        res = run_pingpong(
            Session(plat, strategy="aggreg_multirail"), size, segments=2, reps=reps
        )
        table.add_row(cost, res.one_way_us, ref.one_way_us, res.one_way_us - ref.one_way_us)
    return table


def ablation_eager_threshold(
    thresholds: Sequence[int] = (8 * KB, 32 * KB, 128 * KB),
    sizes: Sequence[int] = (64 * KB, 256 * KB),
    reps: int = 3,
) -> Table:
    """Greedy-vs-best-single bandwidth ratio as the PIO threshold moves.

    A 2-segment message of total size S has S/2-byte segments: once the
    eager/PIO threshold exceeds S/2, both segments are PIO'd and serialize
    on the sending CPU, so the multi-rail gain collapses (the Figs 4-5
    crossover mechanism).  Below it, both segments move by DMA and overlap.
    """
    base = paper_platform()
    table = Table(
        ["eager threshold"] + [f"greedy/best @{format_size(s)}" for s in sizes],
        title="Ablation: PIO/eager threshold vs multi-rail payoff (Figs 4-5 mechanism)",
    )
    for thr in thresholds:
        rails = [r.replace(eager_threshold=thr) for r in base.rails]
        plat = base.with_rails(rails)
        row: list[object] = [format_size(thr)]
        for size in sizes:
            greedy = run_pingpong(
                Session(plat, strategy="greedy"), size, segments=2, reps=reps
            ).bandwidth_MBps
            best = max(
                run_pingpong(
                    Session(plat, strategy="aggreg", strategy_opts={"rail": r.name}),
                    size,
                    segments=2,
                    reps=reps,
                ).bandwidth_MBps
                for r in rails
            )
            row.append(greedy / best)
        table.add_row(*row)
    return table


def ablation_bus_capacity(
    capacities_MBps: Sequence[float] = (1000, 1400, 1850, 2100, 2500, 4000),
    size: int = 8 * MB,
    reps: int = 2,
    samples: Optional[SampleTable] = None,
) -> Table:
    """Hetero-split peak bandwidth vs I/O bus capacity."""
    base = paper_platform()
    table_samples = samples if samples is not None else sample_rails(base)
    nic_sum = sum(r.bw_MBps for r in base.rails)
    table = Table(
        ["bus (MB/s)", "hetero-split bw (MB/s)", "sum of NICs (MB/s)"],
        title=f"Ablation: I/O bus capacity vs aggregated bandwidth ({format_size(size)})",
    )
    for cap in capacities_MBps:
        plat = dataclasses.replace(base, host=base.host.replace(bus_MBps=cap))
        res = run_pingpong(
            Session(plat, strategy="split_balance", samples=table_samples),
            size,
            reps=reps,
        )
        table.add_row(cap, res.bandwidth_MBps, nic_sum)
    return table


def ablation_window(
    gaps_us: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 5.0, 20.0),
    size: int = 1024,
    segments: int = 4,
    reps: int = 3,
) -> Table:
    """Aggregation benefit vs inter-submit gap (optimization window)."""
    from ..hardware.presets import MYRI_10G

    plat = single_rail_platform(MYRI_10G)
    table = Table(
        ["submit gap (us)", "aggreg latency (us)", "no-aggreg latency (us)", "aggregated pkts"],
        title=f"Ablation: optimization window ({format_size(size)} total, {segments} segments)",
    )
    for gap in gaps_us:
        s_agg = Session(plat, strategy="aggreg")
        agg = run_pingpong(
            s_agg, size, segments=segments, reps=reps, inter_segment_gap_us=gap
        )
        agg_packets = s_agg.counters()["aggregated_packets"]
        plain = run_pingpong(
            Session(plat, strategy="single_rail"),
            size,
            segments=segments,
            reps=reps,
            inter_segment_gap_us=gap,
        )
        table.add_row(gap, agg.one_way_us, plain.one_way_us, agg_packets)
    return table


def ablation_parallel_pio(
    workers: Sequence[int] = (0, 1, 2),
    sizes: Sequence[int] = (2 * KB, 8 * KB, 16 * KB),
    reps: int = 3,
) -> Table:
    """Greedy 2-segment latency vs number of extra PIO threads (§4).

    With the paper's single-threaded engine (0 workers) PIO sends
    serialize on the CPU; each extra worker lets one more eager copy
    overlap, extending the multi-rail payoff into the PIO regime.
    """
    base = paper_platform()
    table = Table(
        ["pio workers"] + [f"greedy lat @{format_size(s)} (us)" for s in sizes],
        title="Ablation: parallel PIO threads (the paper's §4 future work)",
    )
    for n in workers:
        plat = dataclasses.replace(base, host=base.host.replace(pio_workers=n))
        row: list[object] = [n]
        for size in sizes:
            res = run_pingpong(Session(plat, strategy="greedy"), size, segments=2, reps=reps)
            row.append(res.one_way_us)
        table.add_row(*row)
    return table


def ablation_split_ratio(
    ratios: Sequence[float] = (0.3, 0.4, 0.5, 0.585, 0.7, 0.8),
    size: int = 4 * MB,
    reps: int = 2,
    samples: Optional[SampleTable] = None,
) -> Table:
    """Bandwidth of forced split ratios around the sampled optimum.

    Forcing a ratio is done by feeding the strategy a doctored sample
    table whose fitted bandwidths produce exactly the requested split.
    """
    from ..core.sampling import RailSample

    base = paper_platform()
    real = samples if samples is not None else sample_rails(base)
    mx_name, elan_name = base.rails[0].name, base.rails[1].name
    table = Table(
        ["myri share", "bandwidth (MB/s)"],
        title=f"Ablation: stripping ratio vs bandwidth ({format_size(size)})",
        precision=3,
    )
    for ratio in ratios:
        forged = {
            mx_name: RailSample(
                rail_name=mx_name,
                points=real.get(mx_name).points,
                overhead_us=real.get(mx_name).overhead_us,
                bw_MBps=1000.0 * ratio,
            ),
            elan_name: RailSample(
                rail_name=elan_name,
                points=real.get(elan_name).points,
                overhead_us=real.get(elan_name).overhead_us,
                bw_MBps=1000.0 * (1.0 - ratio),
            ),
        }
        res = run_pingpong(
            Session(
                base,
                strategy="split_balance",
                strategy_opts={"split_decision": 1},
                samples=SampleTable(forged),
            ),
            size,
            reps=reps,
        )
        table.add_row(ratio, res.bandwidth_MBps)
    return table
