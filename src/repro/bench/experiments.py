"""EXPERIMENTS.md generation: run everything, compare against the paper.

:data:`PAPER_CLAIMS` records every quantitative statement the paper makes
about its evaluation; :func:`run_experiments` reproduces all figures and
ablations, evaluates each claim against the measured sweeps, and
:func:`write_experiments_md` renders the paper-vs-measured record.  The
repository's top-level ``EXPERIMENTS.md`` is produced by::

    python -m repro experiments -o EXPERIMENTS.md
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.sampling import SampleTable, sample_rails
from ..hardware.presets import paper_platform
from ..util.units import KB, MB, format_size
from . import ablations
from .figures import FIGURES, FigureResult
from .stats import find_crossover, peak, value_at

__all__ = ["Claim", "ClaimOutcome", "PAPER_CLAIMS", "run_experiments", "write_experiments_md"]


@dataclass(frozen=True)
class Claim:
    """One quantitative statement from the paper."""

    figure_id: str
    statement: str
    paper_value: str
    #: evaluator(figure_result) -> measured-value string, ok flag
    evaluate: Callable[[FigureResult], tuple[str, bool]]


@dataclass
class ClaimOutcome:
    claim: Claim
    measured: str
    ok: bool


def _within(value: float, target: float, rel: float) -> bool:
    return abs(value - target) <= rel * target


# --------------------------------------------------------------------- #
# claim evaluators
# --------------------------------------------------------------------- #
def _latency_scalar(curve: str, target: float, rel: float = 0.08):
    def ev(result: FigureResult) -> tuple[str, bool]:
        v = value_at(result.sweep, curve, result.sweep.sizes[0], "latency")
        return f"{v:.2f} us at {format_size(result.sweep.sizes[0])}", _within(v, target, rel)

    return ev


def _peak_bandwidth(curve: str, target: float, rel: float = 0.08):
    def ev(result: FigureResult) -> tuple[str, bool]:
        size, v = peak(result.sweep, curve, "bandwidth")
        return f"{v:.0f} MB/s at {format_size(size)}", _within(v, target, rel)

    return ev


def _aggregation_wins_small(plain: str, agg: str, at_size: int):
    def ev(result: FigureResult) -> tuple[str, bool]:
        p = value_at(result.sweep, plain, at_size, "latency")
        a = value_at(result.sweep, agg, at_size, "latency")
        return f"{a:.2f} vs {p:.2f} us at {format_size(at_size)}", a < p

    return ev


def _crossover_band(subject: str, baseline: str, lo: int, hi: int):
    def ev(result: FigureResult) -> tuple[str, bool]:
        x = find_crossover(result.sweep, subject, baseline, "bandwidth", margin=1.02)
        text = "never" if x is None else format_size(x)
        return f"crossover at {text}", x is not None and lo <= x <= hi

    return ev


def _ordering(curves_best_to_worst: list[str], at_size: int):
    def ev(result: FigureResult) -> tuple[str, bool]:
        values = [value_at(result.sweep, c, at_size, "bandwidth") for c in curves_best_to_worst]
        text = " > ".join(f"{v:.0f}" for v in values)
        ok = all(a > b for a, b in zip(values, values[1:]))
        return f"{text} MB/s at {format_size(at_size)}", ok

    return ev


def _constant_gap(subject: str, baseline: str, target: float, tol: float):
    def ev(result: FigureResult) -> tuple[str, bool]:
        gaps = []
        for size in result.sweep.sizes[:6]:
            s = result.sweep.results[subject].get(size)
            b = result.sweep.results[baseline].get(size)
            if s and b:
                gaps.append(s.one_way_us - b.one_way_us)
        mean = sum(gaps) / len(gaps)
        ok = abs(mean - target) <= tol and (max(gaps) - min(gaps)) <= tol
        return f"gap {mean:.2f} us (spread {max(gaps) - min(gaps):.2f})", ok

    return ev


#: every quantitative claim of the evaluation section, keyed to a figure.
PAPER_CLAIMS: list[Claim] = [
    Claim(
        "fig2a",
        "NewMadeleine over MX/Myri-10G has a latency of 2.8 us (§3.1)",
        "2.8 us",
        _latency_scalar("regular", 2.8),
    ),
    Claim(
        "fig2a",
        "Copy-aggregating small multi-segment messages beats sending them separately (§3.1)",
        "aggregated < separate",
        _aggregation_wins_small("4-seg", "4-seg aggregated", 256),
    ),
    Claim(
        "fig2b",
        "Maximal bandwidth over Myri-10G is approximately 1200 MB/s (§3.1)",
        "~1200 MB/s",
        _peak_bandwidth("regular", 1200.0),
    ),
    Claim(
        "fig3a",
        "NewMadeleine over Elan/Quadrics has a latency of 1.7 us (§3.1)",
        "1.7 us",
        _latency_scalar("regular", 1.7),
    ),
    Claim(
        "fig3a",
        "The gain of aggregating small packets on Quadrics is even bigger than on Myri-10G (§3.1)",
        "aggregated < separate",
        _aggregation_wins_small("4-seg", "4-seg aggregated", 256),
    ),
    Claim(
        "fig3b",
        "Maximal bandwidth over Quadrics is approximately 850 MB/s (§3.1)",
        "~850 MB/s",
        _peak_bandwidth("regular", 850.0),
    ),
    Claim(
        "fig4b",
        "The greedy strategy achieves a higher maximum bandwidth (1675 MB/s) than any single network (§3.2)",
        "1675 MB/s",
        _peak_bandwidth("2-seg dynamically balanced", 1675.0),
    ),
    Claim(
        "fig4b",
        "Using both networks is only valuable past the PIO region (>16 KB; conclusion: from 32 KB) (§3.2/§4)",
        "crossover 16-64 KB",
        _crossover_band(
            "2-seg dynamically balanced", "2-seg aggregated over Myri-10G", 16 * KB, 64 * KB
        ),
    ),
    Claim(
        "fig5b",
        "With 4 segments the bandwidth achieved is still rather high despite the additional processing (§3.2)",
        ">1500 MB/s",
        _peak_bandwidth("4-seg dynamically balanced", 1675.0, rel=0.12),
    ),
    Claim(
        "fig6",
        "A gap remains vs the Quadrics NIC-only curve: the mandatory poll of the Myri-10G NIC (§3.3)",
        "constant ~0.35 us",
        _constant_gap(
            "2-seg dynamically balanced",
            "2-seg aggregated over Quadrics (NIC-only)",
            0.35,
            0.10,
        ),
    ),
    Claim(
        "fig7",
        "Bandwidth is improved when chunks are adaptively formed from network samplings (§3.4)",
        "hetero > iso > Myri > Quadrics",
        _ordering(
            [
                "hetero-split over both",
                "iso-split over both",
                "1 segment over Myri-10G",
                "1 segment over Quadrics",
            ],
            8 * MB,
        ),
    ),
]


def run_experiments(
    reps: int = 3, samples: Optional[SampleTable] = None
) -> tuple[dict[str, FigureResult], list[ClaimOutcome]]:
    """Reproduce every figure and evaluate every paper claim."""
    table = samples if samples is not None else sample_rails(paper_platform())
    results: dict[str, FigureResult] = {}
    for figure_id, runner in FIGURES.items():
        kwargs = {"reps": reps}
        if figure_id == "fig7":
            kwargs["samples"] = table
        results[figure_id] = runner(**kwargs)
    outcomes = []
    for claim in PAPER_CLAIMS:
        measured, ok = claim.evaluate(results[claim.figure_id])
        outcomes.append(ClaimOutcome(claim, measured, ok))
    return results, outcomes


def write_experiments_md(
    path: str,
    reps: int = 3,
    samples: Optional[SampleTable] = None,
    include_ablations: bool = True,
) -> list[ClaimOutcome]:
    """Generate the EXPERIMENTS.md record; returns the claim outcomes."""
    table = samples if samples is not None else sample_rails(paper_platform())
    results, outcomes = run_experiments(reps=reps, samples=table)
    lines: list[str] = []
    lines.append("# EXPERIMENTS — paper vs. measured")
    lines.append("")
    lines.append(
        "Auto-generated by `python -m repro experiments`.  The substrate is a"
        " calibrated discrete-event simulation (see DESIGN.md §2), so the"
        " comparison targets *shapes and stated scalars*, not the authors'"
        " testbed noise.  Every figure of the paper's evaluation is"
        " regenerated below; `ok` means the measured data satisfies the"
        " paper's claim."
    )
    lines.append("")
    lines.append("## Claim-by-claim record")
    lines.append("")
    lines.append("| Figure | Paper claim | Paper value | Measured | ok |")
    lines.append("|---|---|---|---|---|")
    for oc in outcomes:
        mark = "✅" if oc.ok else "❌"
        lines.append(
            f"| {oc.claim.figure_id} | {oc.claim.statement} |"
            f" {oc.claim.paper_value} | {oc.measured} | {mark} |"
        )
    lines.append("")
    lines.append("## Sampling")
    lines.append("")
    for name in table.rail_names:
        s = table.get(name)
        lines.append(
            f"- `{name}`: fitted {s.bw_MBps:.0f} MB/s + {s.overhead_us:.1f} us"
        )
    ratios = table.ratios(table.rail_names)
    lines.append(f"- stripping ratios: {({k: round(v, 3) for k, v in ratios.items()})}")
    lines.append("")
    lines.append("## Reproduced figures")
    for figure_id in sorted(results):
        result = results[figure_id]
        lines.append("")
        lines.append(f"### {figure_id} — {result.title}")
        lines.append("")
        lines.append("```")
        lines.append(result.render())
        lines.append("")
        lines.append(result.plot())
        lines.append("```")
    if include_ablations:
        lines.append("")
        lines.append("## Extensions (beyond the paper)")
        from . import extensions

        for fn in (
            extensions.ext_rail_scaling,
            extensions.ext_heterogeneous_mix,
            extensions.ext_parallel_pio_latency,
        ):
            lines.append("")
            lines.append("```")
            lines.append(fn().render())
            lines.append("```")
        lines.append("")
        lines.append("## Ablations (mechanisms behind the claims)")
        for fn in (
            ablations.ablation_poll_cost,
            ablations.ablation_eager_threshold,
            ablations.ablation_window,
            ablations.ablation_parallel_pio,
        ):
            lines.append("")
            lines.append("```")
            lines.append(fn().render())
            lines.append("```")
        for fn in (ablations.ablation_bus_capacity, ablations.ablation_split_ratio):
            lines.append("")
            lines.append("```")
            lines.append(fn(samples=table).render())
            lines.append("```")
    lines.append("")
    with open(path, "w") as fh:
        fh.write("\n".join(lines))
    return outcomes
