"""Unidirectional streaming ("flood") workload.

The ping-pong of §3.1 measures request latency round by round; a flood
measures sustained throughput with many requests outstanding — the regime
where the engine's optimization window actually fills up ("the
communication support accumulates packets while the NIC is busy", §2).
With a window of non-blocking sends in flight, aggregation and multi-rail
balancing act on real backlogs instead of the 2-4 segments a ping-pong
produces.

``run_flood`` posts ``count`` messages of ``size`` bytes from node A with
at most ``window`` uncompleted sends at any time; node B pre-posts all
receives.  Reported throughput covers first-submit to last-delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..sim.process import AnyOf, spawn
from ..util.errors import BenchError
from ..util.units import bandwidth_MBps

if TYPE_CHECKING:  # pragma: no cover
    from ..core.session import Session

__all__ = ["FloodResult", "run_flood"]

FLOOD_TAG = 11


@dataclass(frozen=True)
class FloodResult:
    """Outcome of one streaming run."""

    message_size: int
    count: int
    window: int
    elapsed_us: float

    @property
    def total_bytes(self) -> int:
        return self.message_size * self.count

    @property
    def throughput_MBps(self) -> float:
        return bandwidth_MBps(self.total_bytes, self.elapsed_us)

    @property
    def message_rate_per_ms(self) -> float:
        return self.count / (self.elapsed_us / 1000.0)


def run_flood(
    session: "Session",
    size: int,
    count: int = 64,
    window: int = 8,
    tag: int = FLOOD_TAG,
    node_a: int = 0,
    node_b: int = 1,
) -> FloodResult:
    """Stream ``count`` messages of ``size`` bytes from A to B."""
    if count < 1 or window < 1:
        raise BenchError(f"bad count/window: {count}/{window}")
    if size < 0:
        raise BenchError(f"negative size {size}")
    iface_a = session.interface(node_a)
    iface_b = session.interface(node_b)
    sim = session.sim
    timing: dict[str, float] = {}

    recvs = [iface_b.irecv(node_a, tag) for _ in range(count)]

    def sender():
        timing["t0"] = sim.now
        in_flight: list = []
        for _ in range(count):
            while len(in_flight) >= window:
                idx, _v = yield AnyOf([r.completion for r in in_flight])
                in_flight = [r for r in in_flight if not r.done]
            in_flight.append(iface_a.isend(node_b, tag, size))
        while in_flight:
            yield AnyOf([r.completion for r in in_flight])
            in_flight = [r for r in in_flight if not r.done]
        return None

    def drain():
        for req in recvs:
            yield req.completion
        timing["t1"] = sim.now
        return None

    send_proc = spawn(sim, sender(), name="flood.sender")
    drain_proc = spawn(sim, drain(), name="flood.drain")
    session.run_until_idle()
    if not (send_proc.done and drain_proc.done):
        raise BenchError(
            f"flood stalled: sender done={send_proc.done},"
            f" receiver done={drain_proc.done} at t={sim.now:.2f}us"
        )
    elapsed = timing["t1"] - timing["t0"]
    if elapsed <= 0:
        raise BenchError("flood measured non-positive elapsed time")
    return FloodResult(message_size=size, count=count, window=window, elapsed_us=elapsed)
