"""Traced benchmark runs for the ``repro trace`` CLI subcommand.

Each *trace target* builds a span-traced session shaped like one of the
paper's experiments and pushes a small mixed workload through it — a
latency-regime ping-pong (eager/PIO traffic) followed by a bulk transfer
(rendezvous/DMA) — so the exported timeline shows both phases on every
relevant rail.  The returned session is finished and ready for
:func:`repro.obs.export.write_chrome_trace` /
:func:`repro.obs.report.lifecycle_report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..core.sampling import sample_rails
from ..core.session import Session
from ..faults.plan import FaultEvent, FaultPlan
from ..hardware.presets import paper_platform, single_rail_platform
from ..hardware.spec import PlatformSpec
from ..util.errors import BenchError
from ..util.units import KB, MB
from .pingpong import run_pingpong

__all__ = ["TraceTarget", "TRACE_TARGETS", "resolve_trace_target", "run_traced"]


@dataclass(frozen=True)
class TraceTarget:
    """One named traced-run configuration."""

    name: str
    description: str
    #: ``build(platform, trace)`` — ``trace`` as in :class:`Session`.
    build: Callable[..., Session]
    #: (total_bytes, segments, reps) ping-pong rounds pushed through the
    #: session; mixing an eager-sized and a rendezvous-sized round puts
    #: both PIO and DMA spans on the timeline.
    workload: tuple[tuple[int, int, int], ...] = ((256, 2, 2), (4 * MB, 2, 1))


def _two_rail(strategy: str):
    def build(plat: Optional[PlatformSpec], trace=True) -> Session:
        return Session(plat or paper_platform(), strategy=strategy, trace=trace)

    return build


def _split_balance(plat: Optional[PlatformSpec], trace=True) -> Session:
    plat = plat or paper_platform()
    return Session(plat, strategy="split_balance", samples=sample_rails(plat), trace=trace)


def _failover(plat: Optional[PlatformSpec], trace=True) -> Session:
    plat = plat or paper_platform()
    # all faults land inside the single bulk ping-pong round (the traced
    # workload runs each round to idle, so the schedule must overlap the
    # first round's traffic): a transient send error eats the opening
    # handshake wrapper, then each rail is cut once mid-DMA — the lost
    # chunks retry on the surviving rail.  Outages never overlap.
    plan = FaultPlan(
        [
            FaultEvent("drop", 1.0, plat.rails[1].name, count=1),
            FaultEvent("down", 60.0, plat.rails[1].name, duration_us=400.0),
            FaultEvent("down", 4000.0, plat.rails[0].name, duration_us=500.0),
        ]
    )
    return Session(plat, strategy="aggreg_multirail", trace=trace, faults=plan)


def _single_rail(rail_index: int):
    def build(plat: Optional[PlatformSpec], trace=True) -> Session:
        plat = plat or paper_platform()
        return Session(
            single_rail_platform(plat.rails[rail_index]), strategy="aggreg", trace=trace
        )

    return build


TRACE_TARGETS: dict[str, TraceTarget] = {
    t.name: t
    for t in (
        TraceTarget(
            "fig2",
            "single-rail Myri-10G with aggregation (Figs 2a/2b)",
            _single_rail(0),
        ),
        TraceTarget(
            "fig3",
            "single-rail Quadrics with aggregation (Figs 3a/3b)",
            _single_rail(1),
        ),
        TraceTarget(
            "fig4",
            "greedy balancing over both rails, 2-segment (Figs 4a/4b)",
            _two_rail("greedy"),
        ),
        TraceTarget(
            "fig5",
            "greedy balancing over both rails, 4-segment (Figs 5a/5b)",
            _two_rail("greedy"),
            workload=((512, 4, 2), (8 * MB, 4, 1)),
        ),
        TraceTarget(
            "fig6",
            "aggregation on fastest NIC + balanced large (Fig 6) — shows"
            " the idle-rail poll tax",
            _two_rail("aggreg_multirail"),
        ),
        TraceTarget(
            "fig7",
            "adaptive packet stripping over both rails (Fig 7)",
            _split_balance,
            workload=((256, 2, 2), (8 * MB, 1, 1)),
        ),
        TraceTarget(
            "failover",
            "rail outages mid ping-pong: eager and DMA traffic failing"
            " over to the surviving rail (fault.retries > 0)",
            _failover,
            workload=((4 * MB, 2, 2),),
        ),
        TraceTarget(
            "pingpong",
            "plain 2-rail greedy ping-pong, mixed sizes",
            _two_rail("greedy"),
            workload=((64, 1, 3), (64 * KB, 2, 2), (2 * MB, 2, 1)),
        ),
    )
}


def resolve_trace_target(name: str) -> TraceTarget:
    """Map a user-supplied id (``fig6``, ``bench_fig6_aggreg_multirail``,
    ``fig4a`` ...) onto a trace target."""
    key = name.strip().lower().removeprefix("bench_").removesuffix(".py")
    if key in TRACE_TARGETS:
        return TRACE_TARGETS[key]
    # prefix matches: "fig6_aggreg_multirail" -> fig6, "fig4a"/"fig4b" -> fig4
    for target_name in sorted(TRACE_TARGETS, key=len, reverse=True):
        if key.startswith(target_name):
            return TRACE_TARGETS[target_name]
    raise BenchError(
        f"unknown trace target {name!r}; available: {sorted(TRACE_TARGETS)}"
    )


def run_traced(
    name: str, platform: Optional[PlatformSpec] = None, trace: Any = True
) -> Session:
    """Build the target's traced session, run its workload, return it.

    ``trace`` defaults to an unbounded in-memory recorder; pass a ready
    :class:`~repro.obs.spans.SpanRecorder` — e.g. a
    :class:`~repro.obs.streaming.StreamingTracer` — to bound record-time
    memory or sample spans (``repro trace --stream``).
    """
    target = resolve_trace_target(name)
    session = target.build(platform, trace)
    for size, segments, reps in target.workload:
        run_pingpong(session, size, segments=segments, reps=reps, warmup=1)
    return session
