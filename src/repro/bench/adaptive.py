"""Adaptive degrade-recovery bench: one gated point per adaptive strategy.

PR 10's runtime-adaptive strategies (:mod:`repro.core.strategies.adaptive`)
claim to re-converge after a mid-run bandwidth degrade with *no* sampling
re-run.  This suite turns that claim into a regression-gated number: a
fixed rendezvous-heavy workload (sequential 2 MB sends) runs under a
deterministic mid-run ``degrade`` fault, once per adaptive strategy, and
records

* the **simulated** completion latency as an ``elapsed_us`` point
  (``kind="adaptive"``, ``bench="adaptive.degrade_recovery"``,
  ``curve=<strategy>``) — the split ratios a strategy converges to feed
  straight into the chunk schedule, so any behaviour drift in the
  feedback loop moves this number and fails ``repro bench compare``;
* the wall-clock seconds per strategy (noisy, report-only);
* ``adaptive.steady_share.<strategy>`` / ``adaptive.switches.<strategy>``
  report-only metrics so the converged operating point is visible in the
  compare delta table.

Everything is on the sim clock (seeded payloads, fixed fault plan), so a
repeated run is bit-identical — CI's ``adaptive-chaos`` job compares two
records with ``--sim-tol 0``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..util.errors import BenchError
from ..util.units import MB

__all__ = [
    "ADAPTIVE_STRATEGIES",
    "DEGRADE_AT_US",
    "AdaptiveResult",
    "run_adaptive_case",
    "adaptive_point",
    "run_adaptive_suite",
]

#: the strategies this suite races through the degrade-recovery workload.
ADAPTIVE_STRATEGIES = ("feedback", "tournament")

#: the mid-run fault: halve the first rail's bandwidth at this sim time
#: and keep it degraded for the rest of the run.
DEGRADE_AT_US = 2000.0
DEGRADE_FACTOR = 0.5
DEGRADE_FOR_US = 1_000_000.0

#: workload shape: sequential rendezvous sends, each large enough that the
#: split planner stripes both rails on every transfer.
N_SENDS = 8
SIZE = 2 * MB
POLL_US = 25.0


@dataclass(frozen=True)
class AdaptiveResult:
    """One measured degrade-recovery cell."""

    strategy: str
    #: simulated completion time of the whole workload (deterministic).
    elapsed_us: float
    #: kernel events the run executed (deterministic).
    events: int
    #: converged split share of the degraded rail (None when the active
    #: strategy exposes no ratios, e.g. a tournament that settled on a
    #: non-splitting candidate).
    steady_share: Optional[float]
    #: sampling re-runs the fault layer performed — provably 0 for the
    #: observation-driven strategies (they carry no sample table).
    resamples: int
    #: tournament switch count (None for plain strategies).
    switches: Optional[int]
    #: wall seconds per rep (noisy; report-only).
    wall_s: tuple[float, ...]


def _workload(session) -> float:
    """Sequential seeded 2 MB sends node0 -> node1, verified on arrival.

    Returns the simulated completion time of the workload itself — the
    last receive landing — *not* ``sim.now`` after ``run_until_idle``,
    which is dominated by the fault plan's recovery event long after the
    traffic drained.
    """
    from ..sim.process import Timeout

    datas = [random.Random(i).randbytes(SIZE) for i in range(N_SENDS)]
    recvs = [session.interface(1).irecv(0, i + 1) for i in range(N_SENDS)]
    done_at: dict[str, float] = {}

    def sender(iface):
        for i, data in enumerate(datas):
            req = iface.isend(1, i + 1, data)
            while not req.done:
                yield Timeout(POLL_US)
        while not all(r.done for r in recvs):
            yield Timeout(POLL_US)
        done_at["t"] = session.sim.now

    session.spawn(sender(session.interface(0)))
    session.run_until_idle()
    for i, (data, rep) in enumerate(zip(datas, recvs)):
        if rep.data != data:
            raise BenchError(
                f"adaptive.degrade_recovery: send {i + 1} arrived corrupted"
            )
    if "t" not in done_at:  # pragma: no cover - deadlock guard
        raise BenchError("adaptive.degrade_recovery: workload never completed")
    return float(done_at["t"])


def run_adaptive_case(strategy: str, reps: int = 1) -> AdaptiveResult:
    """Run the degrade-recovery workload under ``strategy``.

    The simulated latency and event count are identical across reps
    (fresh simulator each time); only the wall clock varies.
    """
    from ..core.session import Session
    from ..core.strategies.registry import available_strategies
    from ..faults.plan import FaultEvent, FaultPlan
    from ..hardware.presets import paper_platform

    if strategy not in available_strategies():
        raise BenchError(
            f"unknown adaptive bench strategy {strategy!r};"
            f" registered: {available_strategies()}"
        )
    if reps < 1:
        raise BenchError(f"reps must be >= 1, got {reps}")

    elapsed_us = events = None
    steady_share: Optional[float] = None
    resamples = 0
    switches: Optional[int] = None
    walls = []
    for _ in range(reps):
        t0 = time.perf_counter()
        spec = paper_platform()
        plan = FaultPlan(
            [
                FaultEvent(
                    "degrade",
                    DEGRADE_AT_US,
                    spec.rails[0].name,
                    duration_us=DEGRADE_FOR_US,
                    factor=DEGRADE_FACTOR,
                )
            ]
        )
        session = Session(spec, strategy=strategy, faults=plan)
        workload_done_us = _workload(session)
        walls.append(time.perf_counter() - t0)

        strat = session.engine(0).strategy
        ratios = (
            strat.current_ratios() if hasattr(strat, "current_ratios") else None
        )
        rep_share = None if ratios is None else float(ratios[0])
        rep_switches = (
            len(strat.switches) if hasattr(strat, "switches") else None
        )
        rep_elapsed = workload_done_us
        rep_events = int(session.sim.events_executed)
        if elapsed_us is not None and (
            rep_elapsed != elapsed_us or rep_events != events
        ):  # pragma: no cover - determinism guard
            raise BenchError(
                f"adaptive.degrade_recovery {strategy}: reps disagree on"
                " simulated results"
            )
        elapsed_us, events = rep_elapsed, rep_events
        steady_share, switches = rep_share, rep_switches
        resamples = int(session.metrics.snapshot().get("fault.resamples", 0))
    return AdaptiveResult(
        strategy=strategy,
        elapsed_us=elapsed_us,
        events=events,
        steady_share=steady_share,
        resamples=resamples,
        switches=switches,
        wall_s=tuple(walls),
    )


def adaptive_point(result: AdaptiveResult) -> dict[str, Any]:
    """The gateable run-record point of one degrade-recovery cell."""
    return {
        "kind": "adaptive",
        "bench": "adaptive.degrade_recovery",
        "curve": result.strategy,
        "strategy": result.strategy,
        "size": SIZE,
        "count": N_SENDS,
        "elapsed_us": result.elapsed_us,
    }


def run_adaptive_suite(
    recorder,
    strategies: Sequence[str] = ADAPTIVE_STRATEGIES,
    reps: int = 1,
    publish: Optional[Callable[[str, int, int], None]] = None,
) -> list[AdaptiveResult]:
    """Run the degrade-recovery cell per strategy and record everything.

    ``publish(cell, done, total)`` fires after each cell for the live
    endpoint's incremental snapshots.
    """
    if not strategies:
        raise BenchError("no adaptive strategies to run")
    if publish:
        publish("", 0, len(strategies))
    out = []
    for done, name in enumerate(strategies, start=1):
        r = run_adaptive_case(name, reps=reps)
        out.append(r)
        recorder.record_point(adaptive_point(r))
        recorder.record_wall_clock(
            f"adaptive.degrade_recovery.{r.strategy}", list(r.wall_s)
        )
        if publish:
            publish(f"adaptive.degrade_recovery.{r.strategy}", done, len(strategies))

    # merge (don't replace) the metrics snapshot: earlier suites may have
    # recorded the probe + events_per_sec headline already.
    snap = dict(getattr(recorder, "_metrics", {}) or {})
    for r in out:
        if r.steady_share is not None:
            snap[f"adaptive.steady_share.{r.strategy}"] = r.steady_share
        if r.switches is not None:
            snap[f"adaptive.switches.{r.strategy}"] = float(r.switches)
        snap[f"adaptive.resamples.{r.strategy}"] = float(r.resamples)
    recorder.record_metrics(snap)
    return out
