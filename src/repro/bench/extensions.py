"""Extension experiments beyond the paper's evaluation.

The paper ends with directions it could not explore on its 2-rail
testbed; the simulation substrate can.  Three experiments:

* :func:`ext_rail_scaling` — aggregated bandwidth as rails are *added* to
  a node with a fixed I/O bus: the multi-rail gain saturates at the bus
  ceiling, quantifying how far the approach scales (the paper's §3.2 bus
  remark, extrapolated);
* :func:`ext_heterogeneous_mix` — the final strategy on a completely
  different rail mix (InfiniBand + SCI + gigabit TCP), showing the
  sampling-driven logic is generic plug-in code, not Myri/Quadrics
  tuning (§3.5: "although the strategy code is a generic plug-in ...");
* :func:`ext_parallel_pio_latency` — Fig 4(a) re-run with one extra PIO
  thread (§4 future work): the small-message regime where greedy
  balancing loses to a single rail disappears.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..core.sampling import SampleTable, sample_rails
from ..core.session import Session
from ..hardware.presets import GIGE_TCP, IB_DDR, MYRI_10G, PAPER_HOST, QUADRICS_QM500, SCI_D33X
from ..hardware.spec import PlatformSpec
from ..util.tables import Table
from ..util.units import KB, MB, format_size
from .pingpong import run_pingpong

__all__ = ["ext_rail_scaling", "ext_heterogeneous_mix", "ext_parallel_pio_latency"]


def ext_rail_scaling(
    size: int = 8 * MB,
    reps: int = 2,
    bus_MBps: Optional[float] = None,
) -> Table:
    """Aggregated bandwidth vs number of rails on a fixed I/O bus.

    Rails are added fastest-bandwidth first: Myri-10G, then Quadrics,
    then IB DDR (renamed to avoid driver-name collisions).  The table
    also shows the NIC-sum upper bound and the bus capacity.
    """
    rail_pool = [
        MYRI_10G,
        QUADRICS_QM500,
        IB_DDR.replace(name="ibddr2"),
    ]
    host = PAPER_HOST if bus_MBps is None else PAPER_HOST.replace(bus_MBps=bus_MBps)
    table = Table(
        ["rails", "split_balance bw (MB/s)", "sum of NICs (MB/s)", "bus (MB/s)"],
        title=f"Extension: rail-count scaling at {format_size(size)}",
    )
    for n in range(1, len(rail_pool) + 1):
        rails = tuple(rail_pool[:n])
        spec = PlatformSpec(rails=rails, n_nodes=2, host=host)
        samples = sample_rails(spec)
        session = Session(spec, strategy="split_balance", samples=samples)
        res = run_pingpong(session, size, reps=reps)
        table.add_row(
            "+".join(r.name for r in rails),
            res.bandwidth_MBps,
            sum(r.bw_MBps for r in rails),
            host.bus_MBps,
        )
    return table


def ext_heterogeneous_mix(
    sizes: Sequence[int] = (64 * KB, 1 * MB, 16 * MB),
    reps: int = 2,
) -> Table:
    """The final strategy on an IB + SCI + TCP cluster (not the paper's)."""
    spec = PlatformSpec(rails=(IB_DDR, SCI_D33X, GIGE_TCP), n_nodes=2, host=PAPER_HOST)
    samples = sample_rails(spec)
    table = Table(
        ["size", "best single rail (MB/s)", "split_balance (MB/s)", "gain"],
        title="Extension: heterogeneous mix (IB DDR + SCI + GigE TCP)",
    )
    for size in sizes:
        best = max(
            run_pingpong(
                Session(spec, strategy="single_rail", strategy_opts={"rail": r.name}),
                size,
                reps=reps,
            ).bandwidth_MBps
            for r in spec.rails
        )
        multi = run_pingpong(
            Session(spec, strategy="split_balance", samples=samples), size, reps=reps
        ).bandwidth_MBps
        table.add_row(format_size(size), best, multi, multi / best)
    return table


def ext_parallel_pio_latency(
    sizes: Sequence[int] = (256, 2 * KB, 8 * KB, 16 * KB),
    reps: int = 3,
) -> Table:
    """Fig 4(a) with the §4 future work enabled (one extra PIO thread)."""
    from ..hardware.presets import paper_platform

    base = paper_platform()
    mt = dataclasses.replace(base, host=base.host.replace(pio_workers=1))
    table = Table(
        [
            "size",
            "best single (us)",
            "greedy 1-thread (us)",
            "greedy 2-thread (us)",
        ],
        title="Extension: greedy 2-segment latency with parallel PIO (§4)",
    )
    for size in sizes:
        best = min(
            run_pingpong(
                Session(base, strategy="aggreg", strategy_opts={"rail": r.name}),
                size,
                segments=2,
                reps=reps,
            ).one_way_us
            for r in base.rails
        )
        g1 = run_pingpong(Session(base, strategy="greedy"), size, segments=2, reps=reps)
        g2 = run_pingpong(Session(mt, strategy="greedy"), size, segments=2, reps=reps)
        table.add_row(format_size(size), best, g1.one_way_us, g2.one_way_us)
    return table
