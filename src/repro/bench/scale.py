"""Collectives scaling suite: one curve point per node count P.

The scale-out story of this repo (topology presets, lazy engines, the
active-set pump) is only honest if it is *measured* at four-digit node
counts.  This module runs one collective — multi-lane allreduce,
multi-lane barrier, or the NIC combining-tree barrier — on a
rail-optimized platform at each P in ``DEFAULT_POINTS`` and records:

* the **simulated** completion latency as an ``elapsed_us`` point
  (``kind="collective"``, ``bench="scale.<algo>"``, ``curve="P<n>"``),
  which is deterministic and therefore gated by ``repro bench compare``
  exactly like a figure point;
* the wall-clock seconds per P (noisy, report-only);
* ``scale.events_per_sec.P<n>`` / ``scale.events.P<n>`` report-only
  metrics, so a kernel-backend regression at scale shows up in the
  compare delta table even though wall time itself is not gated.

Every (algo, P) task is an isolated :class:`~repro.sim.engine.Simulator`,
so the suite is embarrassingly parallel; ``run_scale_suite(jobs=...)``
mirrors :mod:`repro.obs.runner` — tasks are shipped by value, results
merge in task order — and is bit-identical to a serial run (CI's
``scale-smoke`` job compares the two with ``--sim-tol 0``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..util.errors import BenchError

__all__ = [
    "SCALE_ALGOS",
    "DEFAULT_POINTS",
    "ScaleTask",
    "ScaleResult",
    "run_collective",
    "run_scale_task",
    "scale_point",
    "run_scale_suite",
]

#: collective algorithms the suite knows how to run.
SCALE_ALGOS = ("multilane_allreduce", "multilane_barrier", "nic_barrier")

#: the paper-scale node counts of the headline curve.
DEFAULT_POINTS = (16, 64, 256, 1024)

#: elements in the allreduce input vector (one double per lane keeps the
#: reduction honest without drowning the wire in payload bytes).
VECTOR_LEN = 8

_STRATEGY = "aggreg_multirail"


@dataclass(frozen=True)
class ScaleTask:
    """One (algo, node-count) cell, addressed by value so it can cross
    processes (the pool worker rebuilds the platform locally)."""

    algo: str
    n_nodes: int
    reps: int


@dataclass(frozen=True)
class ScaleResult:
    """One measured cell of the scaling curve."""

    algo: str
    n_nodes: int
    #: simulated completion latency of the collective (deterministic).
    elapsed_us: float
    #: kernel events the run executed (deterministic).
    events: int
    #: wall seconds per rep (noisy; report-only).
    wall_s: tuple[float, ...]
    #: active-set health snapshot of the last rep.
    peak_active_nodes: int
    engines_built: int
    idle_skip_ratio: float

    @property
    def events_per_sec(self) -> float:
        return self.events / min(self.wall_s) if self.wall_s else 0.0


def _rank_body(algo: str, ep, results: dict):
    from ..mpi.collectives import multilane_allreduce, multilane_barrier, nic_barrier

    if algo == "multilane_allreduce":
        values = [float(ep.rank + 1)] * VECTOR_LEN
        out = yield from multilane_allreduce(ep, values)
        results[ep.rank] = out
    elif algo == "multilane_barrier":
        yield from multilane_barrier(ep)
        results[ep.rank] = True
    elif algo == "nic_barrier":
        yield from nic_barrier(ep)
        results[ep.rank] = True
    else:  # pragma: no cover - guarded by run_collective
        raise BenchError(f"unknown scale algo {algo!r}")


def run_collective(algo: str, n_nodes: int, reps: int = 1) -> ScaleResult:
    """Run ``algo`` once per rep on a fresh rail-optimized platform.

    The simulated latency and event count are identical across reps
    (fresh simulator each time); only the wall clock varies.
    """
    if algo not in SCALE_ALGOS:
        raise BenchError(f"unknown scale algo {algo!r}; have {SCALE_ALGOS}")
    if reps < 1:
        raise BenchError(f"reps must be >= 1, got {reps}")
    from ..core.session import Session
    from ..hardware.topology import rail_optimized_platform
    from ..mpi.comm import Communicator

    elapsed_us = events = None
    walls = []
    health: dict[str, Any] = {}
    for _ in range(reps):
        t0 = time.perf_counter()
        spec = rail_optimized_platform(n_nodes)
        session = Session(spec, strategy=_STRATEGY)
        comm = Communicator(session, name=f"scale.{algo}")
        results: dict[int, Any] = {}

        def wrapper(rank):
            yield from _rank_body(algo, comm.endpoint(rank), results)

        procs = [
            session.spawn(wrapper(r), name=f"scale.r{r}") for r in range(n_nodes)
        ]
        session.run_until_idle()
        walls.append(time.perf_counter() - t0)
        if not all(p.done for p in procs):
            raise BenchError(f"scale.{algo} P{n_nodes}: collective deadlocked")
        _check_results(algo, n_nodes, results)
        rep_elapsed = session.sim.now
        rep_events = session.sim.events_executed
        if elapsed_us is not None and (
            rep_elapsed != elapsed_us or rep_events != events
        ):  # pragma: no cover - determinism guard
            raise BenchError(
                f"scale.{algo} P{n_nodes}: reps disagree on simulated results"
            )
        elapsed_us, events = rep_elapsed, rep_events
        health = session.active_health()
    return ScaleResult(
        algo=algo,
        n_nodes=n_nodes,
        elapsed_us=float(elapsed_us),
        events=int(events),
        wall_s=tuple(walls),
        peak_active_nodes=int(health.get("peak_active_nodes", 0)),
        engines_built=int(health.get("engines_built", 0)),
        idle_skip_ratio=float(health.get("idle_skip_ratio", 0.0)),
    )


def _check_results(algo: str, n_nodes: int, results: dict) -> None:
    if len(results) != n_nodes:
        raise BenchError(
            f"scale.{algo} P{n_nodes}: {len(results)}/{n_nodes} ranks finished"
        )
    if algo == "multilane_allreduce":
        expected = [float(n_nodes * (n_nodes + 1) // 2)] * VECTOR_LEN
        for rank, out in results.items():
            if out != expected:
                raise BenchError(
                    f"scale.{algo} P{n_nodes}: rank {rank} reduced wrong"
                    f" (got {out[:2]}..., want {expected[0]})"
                )


def scale_point(result: ScaleResult) -> dict[str, Any]:
    """The gateable run-record point of one scaling cell."""
    return {
        "kind": "collective",
        "bench": f"scale.{result.algo}",
        "curve": f"P{result.n_nodes}",
        "strategy": _STRATEGY,
        "size": VECTOR_LEN * 8,
        "count": result.n_nodes,
        "elapsed_us": result.elapsed_us,
    }


def run_scale_task(task: ScaleTask) -> dict[str, Any]:
    """Pool worker body: run one cell, return a primitive payload."""
    r = run_collective(task.algo, task.n_nodes, reps=task.reps)
    return {
        "algo": r.algo,
        "n_nodes": r.n_nodes,
        "elapsed_us": r.elapsed_us,
        "events": r.events,
        "wall_s": list(r.wall_s),
        "peak_active_nodes": r.peak_active_nodes,
        "engines_built": r.engines_built,
        "idle_skip_ratio": r.idle_skip_ratio,
    }


def run_scale_suite(
    recorder,
    algos: Sequence[str] = SCALE_ALGOS,
    points: Sequence[int] = DEFAULT_POINTS,
    reps: int = 2,
    jobs: Optional[int] = None,
    publish: Optional[Callable[[str, int, int], None]] = None,
) -> list[ScaleResult]:
    """Run the scaling curve and push it into ``recorder``.

    ``jobs`` > 1 fans the (algo, P) cells over a process pool; simulated
    results — and the record's ``points`` section — are bit-identical to
    a serial run (fresh simulator per cell, task-order merge).

    ``publish(cell, done, total)`` fires after each cell for the live
    endpoint's incremental snapshots.
    """
    from ..obs.runner import _mp_context, resolve_jobs

    for algo in algos:
        if algo not in SCALE_ALGOS:
            raise BenchError(f"unknown scale algo {algo!r}; have {SCALE_ALGOS}")
    tasks = [ScaleTask(algo, int(n), reps) for algo in algos for n in points]
    if not tasks:
        raise BenchError("no scale cells to run")
    n_procs = min(resolve_jobs(jobs), len(tasks)) or 1
    if publish:
        publish("", 0, len(tasks))
    if n_procs <= 1:
        rows = []
        for done, task in enumerate(tasks, start=1):
            rows.append(run_scale_task(task))
            if publish:
                publish(f"scale.{task.algo}.P{task.n_nodes}", done, len(tasks))
    else:
        with _mp_context().Pool(processes=n_procs) as pool:
            rows = []
            # chunksize=1: a P=1024 cell costs ~100x a P=16 cell, so
            # fine-grained dealing keeps the pool balanced; imap keeps
            # task order, so the merged record layout is serial-identical.
            for done, (task, row) in enumerate(
                zip(tasks, pool.imap(run_scale_task, tasks, chunksize=1)), start=1
            ):
                rows.append(row)
                if publish:
                    publish(f"scale.{task.algo}.P{task.n_nodes}", done, len(tasks))

    out = []
    scale_metrics: dict[str, float] = {}
    for row in rows:
        r = ScaleResult(
            algo=row["algo"],
            n_nodes=row["n_nodes"],
            elapsed_us=row["elapsed_us"],
            events=row["events"],
            wall_s=tuple(row["wall_s"]),
            peak_active_nodes=row["peak_active_nodes"],
            engines_built=row["engines_built"],
            idle_skip_ratio=row["idle_skip_ratio"],
        )
        out.append(r)
        recorder.record_point(scale_point(r))
        recorder.record_wall_clock(f"scale.{r.algo}.P{r.n_nodes}", list(r.wall_s))
        scale_metrics[f"scale.events_per_sec.P{r.n_nodes}"] = max(
            scale_metrics.get(f"scale.events_per_sec.P{r.n_nodes}", 0.0),
            r.events_per_sec,
        )
        scale_metrics[f"scale.events.{r.algo}.P{r.n_nodes}"] = float(r.events)
    # merge (don't replace) the metrics snapshot: the engine suite may
    # already have recorded the probe + events_per_sec headline.
    snap = dict(getattr(recorder, "_metrics", {}) or {})
    snap.update(scale_metrics)
    recorder.record_metrics(snap)
    return out
