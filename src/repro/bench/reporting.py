"""Report writing: figure tables to stdout, text files, and CSV.

The benchmark suite (``benchmarks/``) uses :func:`report_figure` to print
each reproduced figure in the same rows/series layout as the paper, and
optionally persist them next to the benchmark outputs.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Optional

from ..util.errors import BenchError

if TYPE_CHECKING:  # pragma: no cover
    from ..util.tables import Table
    from .figures import FigureResult

__all__ = ["report_figure", "report_table", "write_reports"]


def report_table(table: "Table", out=None) -> str:
    """Print a table (stdout by default) and return the rendered text."""
    text = table.render()
    print(text, file=out)
    return text


def report_figure(result: "FigureResult", out=None) -> str:
    """Print one reproduced figure with a separator banner."""
    banner = f"=== {result.figure_id} — {result.title} ({result.metric}) ==="
    print(banner, file=out)
    text = report_table(result.table, out=out)
    print("", file=out)
    return text


def write_reports(
    results: Iterable["FigureResult"],
    directory: str,
    csv: bool = True,
) -> list[str]:
    """Persist rendered tables (and CSV) under ``directory``.

    Returns the list of file paths written.
    """
    results = list(results)
    if not results:
        raise BenchError("no figure results to write")
    os.makedirs(directory, exist_ok=True)
    paths = []
    for result in results:
        base = os.path.join(directory, result.figure_id)
        txt_path = base + ".txt"
        with open(txt_path, "w") as fh:
            fh.write(result.table.render() + "\n")
        paths.append(txt_path)
        if csv:
            csv_path = base + ".csv"
            with open(csv_path, "w") as fh:
                fh.write(result.table.to_csv() + "\n")
            paths.append(csv_path)
    return paths
