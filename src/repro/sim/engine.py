"""Discrete-event simulation kernel.

The whole reproduction runs on simulated time: the NewMadeleine engine, the
NIC models, the flow-level bandwidth sharing and the benchmark harness all
schedule events on a single :class:`Simulator`.

Design notes
------------
* Time is a ``float`` in **microseconds**.  With 1 MB/s == 1 B/us the
  bandwidth constants of the paper can be used verbatim.
* The event queue is a binary heap keyed by ``(time, seq)``.  The
  monotonically increasing sequence number makes execution order fully
  deterministic for simultaneous events (FIFO among equal timestamps),
  which the test-suite relies on.
* Events are cancelled lazily: :meth:`EventHandle.cancel` marks the handle
  dead and the main loop skips dead entries when popping.  This keeps
  cancellation O(1) at the cost of leaving tombstones in the heap, which is
  the standard trade-off for simulators with frequent timer cancellation
  (e.g. flow re-scheduling in :mod:`repro.sim.flows`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Simulator", "EventHandle", "SimulationError", "ScheduleInPastError"]


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation kernel."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled strictly before the current time."""


class EventHandle:
    """Handle to a scheduled callback.

    A handle supports cancellation and inspection.  Instances are created
    by :meth:`Simulator.schedule` / :meth:`Simulator.at` only.
    """

    __slots__ = ("time", "seq", "fn", "args", "_alive", "_fired")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self._alive = True
        self._fired = False

    # ordering for heapq --------------------------------------------------
    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    # public API -----------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the event is pending (not fired, not cancelled)."""
        return self._alive and not self._fired

    @property
    def fired(self) -> bool:
        """True once the callback has been executed."""
        return self._fired

    def cancel(self) -> bool:
        """Cancel the event.

        Returns ``True`` if the event was pending and is now cancelled,
        ``False`` if it had already fired or was already cancelled.
        Cancelling drops the callback reference so that captured state can
        be garbage collected even though the tombstone stays in the heap.
        """
        if not self.alive:
            return False
        self._alive = False
        self.fn = None
        self.args = ()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else ("pending" if self._alive else "cancelled")
        return f"<EventHandle t={self.time:.3f} seq={self.seq} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(5.0, out.append, "a")
    >>> _ = sim.schedule(1.0, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[EventHandle] = []
        self._seq: int = 0
        self._running = False
        self._events_executed: int = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far (for diagnostics)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for ev in self._heap if ev.alive)

    def peek_next_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_dead()
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now.

        ``delay`` must be >= 0; a zero delay runs after all events already
        queued at the current time (FIFO ordering).
        """
        if delay < 0:
            raise ScheduleInPastError(f"negative delay {delay!r}")
        return self.at(self._now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise ScheduleInPastError(
                f"cannot schedule at {time!r}, current time is {self._now!r}"
            )
        self._seq += 1
        ev = EventHandle(time, self._seq, fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and not heap[0]._alive:
            heapq.heappop(heap)

    def step(self) -> bool:
        """Execute the next live event.  Returns False if none remain."""
        self._drop_dead()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        self._now = ev.time
        ev._fired = True
        fn, args = ev.fn, ev.args
        ev.fn, ev.args = None, ()  # release references
        self._events_executed += 1
        assert fn is not None
        fn(*args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        When the loop stops because of ``until``, the clock is advanced to
        ``until`` even if no event fired there.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while True:
                self._drop_dead()
                if not self._heap:
                    break
                nxt = self._heap[0].time
                if until is not None and nxt > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Run to queue exhaustion; guard against runaway loops."""
        self.run(max_events=max_events)
        self._drop_dead()
        if self._heap:
            raise SimulationError(
                f"simulation did not converge within {max_events} events"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.3f} pending={self.pending}>"
