"""Discrete-event simulation kernel.

The whole reproduction runs on simulated time: the NewMadeleine engine, the
NIC models, the flow-level bandwidth sharing and the benchmark harness all
schedule events on a single :class:`Simulator`.

Design notes
------------
* Time is a ``float`` in **microseconds**.  With 1 MB/s == 1 B/us the
  bandwidth constants of the paper can be used verbatim.
* The event queue is a binary heap keyed by ``(time, seq)``.  The
  monotonically increasing sequence number makes execution order fully
  deterministic for simultaneous events (FIFO among equal timestamps),
  which the test-suite relies on.
* Events are cancelled lazily: :meth:`EventHandle.cancel` marks the handle
  dead and the main loop skips dead entries when popping.  This keeps
  cancellation O(1) at the cost of leaving tombstones in the heap, which is
  the standard trade-off for simulators with frequent timer cancellation
  (e.g. flow re-scheduling in :mod:`repro.sim.flows`).

Fast paths (see DESIGN.md "Kernel fast paths")
----------------------------------------------
* **Live counter** — :attr:`Simulator.pending` is maintained incrementally
  (O(1)) instead of scanning the heap; cancellation notifies the owning
  simulator.
* **Tombstone compaction** — when cancelled entries exceed both an absolute
  floor and half the heap, the heap is rebuilt in place without them.
  Rebuilding preserves order exactly: every entry has a unique
  ``(time, seq)`` key, so pop order after ``heapify`` is unchanged.
* **Zero-delay FIFO lane** — events scheduled *at the current time* go to a
  deque instead of the heap (append/popleft instead of two O(log n) heap
  operations).  The lane merges with the heap by ``(time, seq)``, so FIFO
  order among equal timestamps is identical to the heap-only kernel.
* The :meth:`run` loop binds hot attributes locally and inlines the pop
  path rather than calling :meth:`step` per event.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

__all__ = ["Simulator", "EventHandle", "SimulationError", "ScheduleInPastError"]


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation kernel."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled strictly before the current time."""


class EventHandle:
    """Handle to a scheduled callback.

    A handle supports cancellation and inspection.  Instances are created
    by :meth:`Simulator.schedule` / :meth:`Simulator.at` only.
    """

    __slots__ = ("time", "seq", "fn", "args", "_alive", "_fired", "_sim", "_in_heap")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
        in_heap: bool = True,
    ):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self._alive = True
        self._fired = False
        self._sim = sim
        self._in_heap = in_heap

    # ordering for heapq --------------------------------------------------
    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    # public API -----------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the event is pending (not fired, not cancelled)."""
        return self._alive and not self._fired

    @property
    def fired(self) -> bool:
        """True once the callback has been executed."""
        return self._fired

    def cancel(self) -> bool:
        """Cancel the event.

        Returns ``True`` if the event was pending and is now cancelled,
        ``False`` if it had already fired or was already cancelled.
        Cancelling drops the callback reference so that captured state can
        be garbage collected even though the tombstone stays in the heap.
        """
        if not self.alive:
            return False
        self._alive = False
        self.fn = None
        self.args = ()
        sim = self._sim
        if sim is not None:
            sim._note_cancel(self)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else ("pending" if self._alive else "cancelled")
        return f"<EventHandle t={self.time:.3f} seq={self.seq} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    ``Simulator(...)`` is also the backend dispatcher: constructing it
    returns the concrete kernel selected by ``backend=`` /
    ``$REPRO_SIM_BACKEND`` / auto-detection (see :mod:`repro.sim.backend`).
    The class body below is the ``heap`` backend — the original
    tombstoned-binary-heap kernel, kept unchanged as the reference
    implementation that the calendar and native backends are
    differentially tested against.

    Example
    -------
    >>> sim = Simulator(backend="heap")
    >>> out = []
    >>> _ = sim.schedule(5.0, out.append, "a")
    >>> _ = sim.schedule(1.0, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    >>> sim.now
    5.0
    """

    #: concrete backend name; subclasses override.
    backend = "heap"

    #: don't bother compacting heaps with fewer dead entries than this.
    COMPACT_MIN_DEAD = 64
    #: compact when dead entries exceed this fraction of the heap.
    COMPACT_RATIO = 0.5

    def __new__(cls, backend: Optional[str] = None) -> "Simulator":
        # Dispatch only on the base class: Simulator() returns whichever
        # backend is selected; subclasses construct directly.
        if cls is Simulator:
            from .backend import resolve_backend, simulator_class

            name = resolve_backend(backend)
            if name != "heap":
                return object.__new__(simulator_class(name))
        return object.__new__(cls)

    def __init__(self, backend: Optional[str] = None) -> None:
        self._now: float = 0.0
        self._heap: list[EventHandle] = []
        #: zero-delay lane: events scheduled at exactly the current time.
        self._fifo: deque[EventHandle] = deque()
        self._seq: int = 0
        self._running = False
        self._events_executed: int = 0
        self._live: int = 0
        self._dead_heap: int = 0
        self._compactions: int = 0
        self._compact_min_dead: int = self.COMPACT_MIN_DEAD
        self._compact_ratio: float = self.COMPACT_RATIO

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far (for diagnostics)."""
        return self._events_executed

    @property
    def events_scheduled(self) -> int:
        """Total number of events ever scheduled (for diagnostics/tests)."""
        return self._seq

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    @property
    def heap_compactions(self) -> int:
        """Number of in-place tombstone compactions performed so far."""
        return self._compactions

    @property
    def tombstone_ratio(self) -> float:
        """Fraction of heap entries that are cancelled tombstones (0..1)."""
        n = len(self._heap)
        return self._dead_heap / n if n else 0.0

    def peek_next_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_dead()
        t = self._heap[0].time if self._heap else None
        if self._fifo:
            ft = self._fifo[0].time
            if t is None or ft < t:
                t = ft
        return t

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now.

        ``delay`` must be >= 0; a zero delay runs after all events already
        queued at the current time (FIFO ordering).
        """
        if delay < 0:
            raise ScheduleInPastError(f"negative delay {delay!r}")
        return self.at(self._now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        now = self._now
        if time < now:
            raise ScheduleInPastError(
                f"cannot schedule at {time!r}, current time is {now!r}"
            )
        self._seq += 1
        self._live += 1
        if time == now:
            # zero-delay fast lane: already in (time, seq) order by
            # construction, so append/popleft replaces two heap operations.
            ev = EventHandle(time, self._seq, fn, args, self, in_heap=False)
            self._fifo.append(ev)
        else:
            ev = EventHandle(time, self._seq, fn, args, self)
            heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------ #
    # cancellation bookkeeping
    # ------------------------------------------------------------------ #
    def _note_cancel(self, ev: EventHandle) -> None:
        self._live -= 1
        if ev._in_heap:
            self._dead_heap += 1
            if (
                self._dead_heap >= self._compact_min_dead
                and self._dead_heap >= self._compact_ratio * len(self._heap)
            ):
                self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones, in place.

        In place (slice assignment) so that a :meth:`run` loop holding a
        local reference keeps seeing the same list.  Order is preserved:
        ``(time, seq)`` keys are unique, so heapify yields the same pop
        sequence as lazily skipping the dead entries would have.
        """
        heap = self._heap
        heap[:] = [ev for ev in heap if ev._alive]
        heapq.heapify(heap)
        self._dead_heap = 0
        self._compactions += 1

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and not heap[0]._alive:
            heapq.heappop(heap)
            self._dead_heap -= 1
        fifo = self._fifo
        while fifo and not fifo[0]._alive:
            fifo.popleft()

    def step(self) -> bool:
        """Execute the next live event.  Returns False if none remain."""
        self._drop_dead()
        heap = self._heap
        fifo = self._fifo
        if fifo:
            if heap and heap[0] < fifo[0]:
                ev = heapq.heappop(heap)
            else:
                ev = fifo.popleft()
        elif heap:
            ev = heapq.heappop(heap)
        else:
            return False
        self._fire(ev)
        return True

    def _fire(self, ev: EventHandle) -> None:
        self._now = ev.time
        ev._fired = True
        self._live -= 1
        fn, args = ev.fn, ev.args
        ev.fn, ev.args = None, ()  # release references
        self._events_executed += 1
        assert fn is not None
        fn(*args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        When the loop stops because of ``until``, the clock is advanced to
        ``until`` even if no event fired there.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        # hot loop: bind attributes once; _compact mutates the heap list in
        # place, so these locals stay valid across callbacks.
        heap = self._heap
        fifo = self._fifo
        pop = heapq.heappop
        popleft = fifo.popleft
        try:
            while True:
                while heap and not heap[0]._alive:
                    pop(heap)
                    self._dead_heap -= 1
                while fifo and not fifo[0]._alive:
                    popleft()
                if fifo:
                    ev = fifo[0]
                    if heap and heap[0] < ev:
                        ev = heap[0]
                        from_fifo = False
                    else:
                        from_fifo = True
                elif heap:
                    ev = heap[0]
                    from_fifo = False
                else:
                    break
                if until is not None and ev.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                if from_fifo:
                    popleft()
                else:
                    pop(heap)
                executed += 1
                self._now = ev.time
                ev._fired = True
                self._live -= 1
                fn = ev.fn
                args = ev.args
                ev.fn = None
                ev.args = ()
                self._events_executed += 1
                fn(*args)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Run to queue exhaustion; guard against runaway loops."""
        self.run(max_events=max_events)
        if self._live:
            raise SimulationError(
                f"simulation did not converge within {max_events} events"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator backend={self.backend} t={self._now:.3f}"
            f" pending={self.pending}>"
        )
