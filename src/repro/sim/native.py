"""``native`` backend: Simulator facade over the C event core.

The wrapper is intentionally thin: ``schedule`` and ``at`` are bound on
the *instance* directly to the C core's methods, so per-event scheduling
from inside callbacks costs one C call with no Python wrapper frame.
``run``/``step`` delegate to the C run loop, which pops, advances the
clock and invokes callbacks without re-entering the interpreter between
events.  Event handles returned by the core (``NativeEvent``) expose the
same surface as :class:`~repro.sim.engine.EventHandle` (``time``,
``seq``, ``alive``, ``fired``, ``fn``, ``args``, ``cancel()``).

Construct via ``Simulator(backend="native")`` (raises
:class:`~repro.sim.backend.BackendUnavailableError` without a C
toolchain) or let ``auto`` pick it up.
"""

from __future__ import annotations

from typing import Optional

from .engine import SimulationError, Simulator

__all__ = ["NativeSimulator"]


class NativeSimulator(Simulator):
    """C-core implementation of the :class:`Simulator` API."""

    backend = "native"

    def __init__(self, backend: Optional[str] = None) -> None:
        from .backend import BackendUnavailableError
        from .native_build import build_error, load_native_core

        mod = load_native_core()
        if mod is None:  # pragma: no cover - depends on host toolchain
            raise BackendUnavailableError(
                f"native core unavailable: {build_error}"
            )
        self._core = core = mod.Core()
        # Instance-bound C methods: callbacks scheduling new events skip
        # both the wrapper frame and the class-attribute lookup.
        self.schedule = core.schedule
        self.at = core.at
        self.peek_next_time = core.peek_next_time
        self.step = core.step

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        return self._core.now

    @property
    def pending(self) -> int:
        return self._core.pending

    @property
    def events_executed(self) -> int:
        return self._core.events_executed

    @property
    def events_scheduled(self) -> int:
        return self._core.events_scheduled

    @property
    def heap_compactions(self) -> int:
        return self._core.heap_compactions

    @property
    def tombstone_ratio(self) -> float:
        n = self._core.heap_size
        return self._core.dead / n if n else 0.0

    # test knob parity with the heap backend
    @property
    def _compact_min_dead(self) -> int:
        return self._core.compact_min_dead

    @_compact_min_dead.setter
    def _compact_min_dead(self, n: int) -> None:
        self._core.compact_min_dead = n

    # ------------------------------------------------------------------ #
    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        self._core.run(until, max_events)

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        self._core.run(None, max_events)
        if self._core.pending:
            raise SimulationError(
                f"simulation did not converge within {max_events} events"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self._core
        return f"<Simulator backend=native t={c.now:.3f} pending={c.pending}>"
