"""Discrete-event simulation kernel for the NewMadeleine reproduction.

Public surface:

* :class:`~repro.sim.engine.Simulator` — deterministic event loop (time in µs).
* :mod:`~repro.sim.process` — generator processes, :class:`Signal`, combinators.
* :mod:`~repro.sim.resources` — counted :class:`Resource` and FIFO :class:`Store`.
* :mod:`~repro.sim.flows` — max-min fair flow-level bandwidth sharing.
* :mod:`~repro.sim.backend` — pluggable kernel backends (heap / calendar /
  native) selected via ``Simulator(backend=)`` or ``$REPRO_SIM_BACKEND``.
"""

from .backend import (
    BACKEND_NAMES,
    BackendUnavailableError,
    available_backends,
    flows_mode,
    native_available,
    resolve_backend,
)
from .engine import EventHandle, ScheduleInPastError, SimulationError, Simulator
from .flows import Flow, FlowError, FlowNetwork, Link, make_flow_network, max_min_rates
from .process import AllOf, AnyOf, Process, ProcessError, Signal, Timeout, spawn
from .resources import Resource, ResourceError, Store

__all__ = [
    "Simulator",
    "EventHandle",
    "SimulationError",
    "ScheduleInPastError",
    "Timeout",
    "Signal",
    "Process",
    "AllOf",
    "AnyOf",
    "ProcessError",
    "spawn",
    "Resource",
    "Store",
    "ResourceError",
    "Link",
    "Flow",
    "FlowNetwork",
    "FlowError",
    "max_min_rates",
    "make_flow_network",
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "available_backends",
    "flows_mode",
    "native_available",
    "resolve_backend",
]
