"""Counted resources and FIFO stores for simulated processes.

The communication engine itself is event-driven, but the hardware models use
these primitives: e.g. a node's comm CPU is a :class:`Resource` of capacity 1
(PIO transfers serialize on it), and driver mailboxes are :class:`Store`\\ s.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from .engine import SimulationError, Simulator

__all__ = ["Resource", "Store", "ResourceError"]


class ResourceError(SimulationError):
    """Raised on resource misuse (e.g. releasing an unheld resource)."""


class Resource:
    """A counted resource with FIFO admission.

    Callback style: ``acquire(cb)`` runs ``cb()`` immediately if a slot is
    free, otherwise queues the request.  ``release()`` hands the slot to the
    next queued requester synchronously.
    """

    __slots__ = ("sim", "name", "capacity", "_in_use", "_queue")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._queue: Deque[Callable[[], None]] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def acquire(self, callback: Callable[[], None]) -> None:
        """Request a slot; ``callback`` runs when granted (maybe now)."""
        if self._in_use < self.capacity:
            self._in_use += 1
            callback()
        else:
            self._queue.append(callback)

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns True on success."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Release a held slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise ResourceError(f"release of idle resource {self.name!r}")
        if self._queue:
            # Hand the slot over directly; _in_use stays constant.
            cb = self._queue.popleft()
            cb()
        else:
            self._in_use -= 1

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Resource {self.name} {self._in_use}/{self.capacity}"
            f" queued={len(self._queue)}>"
        )


class Store:
    """An unbounded FIFO channel between producers and consumers.

    ``get`` requests are served in order; if items are available a get
    completes immediately, otherwise the consumer callback is queued until a
    ``put`` arrives.
    """

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Callable[[Any], None]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit an item, handing it to the oldest waiting getter if any."""
        if self._getters:
            cb = self._getters.popleft()
            cb(item)
        else:
            self._items.append(item)

    def get(self, callback: Callable[[Any], None]) -> None:
        """Request an item; ``callback(item)`` runs when one is available."""
        if self._items:
            callback(self._items.popleft())
        else:
            self._getters.append(callback)

    def try_get(self) -> tuple[bool, Optional[Any]]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def peek(self) -> Optional[Any]:
        """Oldest item without removing it, or None."""
        return self._items[0] if self._items else None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Store {self.name} items={len(self._items)} getters={len(self._getters)}>"
