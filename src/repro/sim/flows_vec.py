"""Vectorized max-min allocation: numpy batch progressive filling.

:class:`VectorFlowNetwork` keeps per-flow state (``remaining``, ``rate``,
``last_update``) and the flow/link incidence matrix in persistent numpy
arrays, so the two hot paths of :class:`~repro.sim.flows.FlowNetwork`
become array operations:

* **settle** — ``rem = max(0, rem - rate * elapsed)`` over all active
  flows in one elementwise pass;
* **max-min progressive filling** — per-round share computation, freeze
  masks and residual updates over the incidence matrix instead of
  per-flow dict walks.

Bit-identity with the scalar reference is a hard requirement (CI gates
figure digests at ``--sim-tol 0``), which dictates the shape of the
vector code:

* the bottleneck scan must visit links in the scalar's dict-insertion
  (first-encounter) order with the same eps-tolerant comparison — the
  persistent ``keymat`` (``fid * 64 + path position``, column-min over
  the component) reconstructs that order exactly;
* residual capacity updates must apply the *sequential* per-link chain
  ``r = max(0, r - share)`` once per crossing — in IEEE-754 the chained
  form differs from ``r - k * share`` in the last ulp, and the scalar
  reference chains;
* elementwise float64 numpy ops produce the same bits as the equivalent
  python-float expressions, so the settle step vectorizes freely.

Because both allocators are bit-identical, the network can cut over to
the scalar algorithm for small components (numpy's fixed per-call cost
dominates below a few dozen flows) without perturbing determinism.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from .flows import _EPS, Flow, FlowError, FlowNetwork, Link

__all__ = ["VecFlow", "VectorFlowNetwork", "max_min_rates_vec", "SCALAR_CUTOVER"]

#: components smaller than this run the scalar allocator — numpy's fixed
#: per-call cost only pays off past a few dozen flows.  Any value is
#: safe: both allocators are bit-identical (property-tested).
SCALAR_CUTOVER = 24

#: ``keymat`` packs (fid, path position) as ``fid * _MAX_PATH + pos``;
#: exact in float64 up to fid ~ 2**47.
_MAX_PATH = 64

# The base class' slot member descriptors: VecFlow shadows these three
# names with properties but still uses the underlying slot storage while
# the flow is outside the network (before attach / after detach).
_F_REM = Flow.__dict__["remaining"]
_F_RATE = Flow.__dict__["rate"]
_F_LAST = Flow.__dict__["last_update"]


def _water_fill(inc, link_order, residual):
    """Progressive filling over an incidence matrix; returns rates (F,).

    ``inc`` is the (F, L) link-crossing multiplicity matrix, ``residual``
    the (L,) capacity vector (mutated in place), ``link_order`` the
    column scan order for the bottleneck search — this must match the
    scalar implementation's first-encounter order so the eps-tolerant
    scan picks the same bottleneck and float updates chain identically.
    """
    nflows = inc.shape[0]
    # The bottleneck scan and residual chains run on plain Python lists:
    # float64 round-trips through `tolist` exactly, and per-element list
    # access beats numpy scalar boxing by ~10x at these sizes.
    counts = inc.sum(axis=0, dtype=np.int64).tolist()
    res = residual.tolist() if isinstance(residual, np.ndarray) else list(residual)
    order = [int(j) for j in link_order]
    rates = np.zeros(nflows, dtype=np.float64)
    unfrozen = np.ones(nflows, dtype=bool)
    remaining = nflows
    while remaining:
        best = math.inf
        bottleneck = -1
        for j in order:
            n = counts[j]
            if n <= 0:
                continue
            share = res[j] / n
            if share < best - _EPS:
                best = share
                bottleneck = j
        if bottleneck < 0:  # pragma: no cover - defensive
            raise FlowError("no bottleneck found with unfrozen flows remaining")
        frozen_now = unfrozen & (inc[:, bottleneck] > 0)
        rates[frozen_now] = best
        remaining -= int(frozen_now.sum())
        if remaining == 0:
            # last round: residual/counts are never read again, so the
            # (bit-exact but dead) chain bookkeeping can be skipped
            break
        # Per-link residual updates chain sequentially (k applications of
        # max(0, r - best), NOT r - k*best): bit-compatible with the
        # scalar reference's per-flow loop.  Order across links is
        # irrelevant — each link's chain is independent.
        k = inc[frozen_now].sum(axis=0, dtype=np.int64).tolist()
        for j, kj in enumerate(k):
            if kj:
                r = res[j]
                for _ in range(kj):
                    r = r - best
                    if r < 0.0:
                        r = 0.0
                res[j] = r
                counts[j] -= kj
        unfrozen &= ~frozen_now
    return rates


def max_min_rates_vec(
    flows: Iterable[Flow], capacities: Optional[dict[Link, float]] = None
) -> dict[Flow, float]:
    """Vectorized :func:`~repro.sim.flows.max_min_rates`.

    Builds the incidence matrix from scratch per call — the standalone
    differential-testing entry point.  :class:`VectorFlowNetwork` keeps
    the matrix persistent instead.  Returns the same mapping (same float
    bits) as the scalar reference; key order follows the input order
    rather than the scalar's freeze order.
    """
    flows = list(flows)
    if not flows:
        return {}
    link_idx: dict[Link, int] = {}
    links: list[Link] = []
    for f in flows:
        if not f.path:
            raise FlowError(f"flow {f.fid} has an empty path")
        for link in f.path:
            if link not in link_idx:
                link_idx[link] = len(links)
                links.append(link)
    nlinks = len(links)
    inc = np.zeros((len(flows), nlinks), dtype=np.int16)
    for i, f in enumerate(flows):
        for link in f.path:
            inc[i, link_idx[link]] += 1
    residual = np.array(
        [capacities[ln] if capacities else ln.capacity for ln in links],
        dtype=np.float64,
    )
    rates = _water_fill(inc, range(nlinks), residual)
    return {f: float(r) for f, r in zip(flows, rates)}


class VecFlow(Flow):
    """Flow whose mutable state lives in the network's arrays.

    While attached (``slot >= 0``) ``remaining`` / ``rate`` /
    ``last_update`` read and write the owning network's float64 arrays;
    outside the network (zero-size flows, completed flows) they fall
    back to the plain slot storage inherited from :class:`Flow`.  All
    getters return python floats so reprs, digests and JSON output are
    indistinguishable from the scalar network's.
    """

    __slots__ = ("net", "slot")

    def __init__(self, net: "VectorFlowNetwork", *args):
        self.net = net
        self.slot = -1
        super().__init__(*args)

    @property
    def remaining(self) -> float:
        s = self.slot
        if s < 0:
            return _F_REM.__get__(self)
        return float(self.net._rem[s])

    @remaining.setter
    def remaining(self, v: float) -> None:
        s = self.slot
        if s < 0:
            _F_REM.__set__(self, v)
        else:
            self.net._rem[s] = v

    @property
    def rate(self) -> float:
        s = self.slot
        if s < 0:
            return _F_RATE.__get__(self)
        return float(self.net._rate[s])

    @rate.setter
    def rate(self, v: float) -> None:
        s = self.slot
        if s < 0:
            _F_RATE.__set__(self, v)
        else:
            self.net._rate[s] = v

    @property
    def last_update(self) -> float:
        s = self.slot
        if s < 0:
            return _F_LAST.__get__(self)
        return float(self.net._last[s])

    @last_update.setter
    def last_update(self, v: float) -> None:
        s = self.slot
        if s < 0:
            _F_LAST.__set__(self, v)
        else:
            self.net._last[s] = v
            # a direct write can desync the settle-idempotence stamp
            self.net._settled_at = -1.0


class VectorFlowNetwork(FlowNetwork):
    """FlowNetwork with persistent numpy state (see module docstring).

    Public behaviour — rates, completion times, event sequence numbers,
    counters — is bit-identical to the scalar :class:`FlowNetwork`.
    """

    mode = "vector"

    def __init__(self, sim):
        super().__init__(sim)
        cap = 16
        self._cap = cap
        self._lcap = 8
        self._nlinks = 0
        self._rem = np.zeros(cap, dtype=np.float64)
        self._rate = np.zeros(cap, dtype=np.float64)
        self._last = np.zeros(cap, dtype=np.float64)
        self._fid_arr = np.zeros(cap, dtype=np.int64)
        self._active = np.zeros(cap, dtype=bool)
        self._inc = np.zeros((cap, self._lcap), dtype=np.int16)
        self._keymat = np.full((cap, self._lcap), np.inf, dtype=np.float64)
        self._free = list(range(cap - 1, -1, -1))
        self._slot_flow: list[Optional[VecFlow]] = [None] * cap
        self._links: list[Link] = []
        self._link_idx: dict[Link, int] = {}
        #: allocator-path counters (observability; not part of digests).
        self.vector_calls = 0
        self.scalar_calls = 0
        #: sim time of the last settle — settling twice at the same time
        #: is a no-op (elapsed 0), so the second pass can be skipped.
        self._settled_at = -1.0

    # -- capacity management ------------------------------------------- #
    def _grow_rows(self) -> None:
        old, new = self._cap, self._cap * 2
        for name in ("_rem", "_rate", "_last"):
            arr = np.zeros(new, dtype=np.float64)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        fid2 = np.zeros(new, dtype=np.int64)
        fid2[:old] = self._fid_arr
        self._fid_arr = fid2
        act2 = np.zeros(new, dtype=bool)
        act2[:old] = self._active
        self._active = act2
        inc2 = np.zeros((new, self._lcap), dtype=np.int16)
        inc2[:old] = self._inc
        self._inc = inc2
        key2 = np.full((new, self._lcap), np.inf, dtype=np.float64)
        key2[:old] = self._keymat
        self._keymat = key2
        self._slot_flow.extend([None] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))
        self._cap = new

    def _register_link(self, link: Link) -> int:
        j = self._nlinks
        if j >= self._lcap:
            newl = self._lcap * 2
            inc2 = np.zeros((self._cap, newl), dtype=np.int16)
            inc2[:, : self._lcap] = self._inc
            self._inc = inc2
            key2 = np.full((self._cap, newl), np.inf, dtype=np.float64)
            key2[:, : self._lcap] = self._keymat
            self._keymat = key2
            self._lcap = newl
        self._link_idx[link] = j
        self._links.append(link)
        self._nlinks = j + 1
        return j

    # -- FlowNetwork hooks --------------------------------------------- #
    def _new_flow(self, *args) -> VecFlow:
        return VecFlow(self, *args)

    def _attach(self, flow: VecFlow) -> None:
        super()._attach(flow)
        if len(flow.path) > _MAX_PATH:
            raise FlowError(f"flow {flow.fid} path longer than {_MAX_PATH} links")
        if not self._free:
            self._grow_rows()
        s = self._free.pop()
        # Move state written by Flow.__init__ (pre-attach, slot storage)
        # into the arrays, then activate the slot.
        self._rem[s] = _F_REM.__get__(flow)
        self._rate[s] = _F_RATE.__get__(flow)
        self._last[s] = _F_LAST.__get__(flow)
        self._fid_arr[s] = flow.fid
        self._inc[s, :] = 0
        self._keymat[s, :] = np.inf
        for pos, link in enumerate(flow.path):
            j = self._link_idx.get(link)
            if j is None:
                j = self._register_link(link)
            self._inc[s, j] += 1
            key = float(flow.fid * _MAX_PATH + pos)
            if key < self._keymat[s, j]:
                self._keymat[s, j] = key
        self._slot_flow[s] = flow
        self._active[s] = True
        flow.slot = s

    def _detach(self, flow: VecFlow) -> None:
        s = flow.slot
        if s >= 0:
            rem = float(self._rem[s])
            rate = float(self._rate[s])
            last = float(self._last[s])
            flow.slot = -1
            _F_REM.__set__(flow, rem)
            _F_RATE.__set__(flow, rate)
            _F_LAST.__set__(flow, last)
            self._active[s] = False
            self._slot_flow[s] = None
            self._free.append(s)
        super()._detach(flow)

    # -- vectorized hot paths ------------------------------------------ #
    def _settle(self) -> None:
        if not self._flows:
            return
        now = self.sim.now
        if now == self._settled_at:
            # every active row already has last == now (settle leaves it
            # so, and attach stamps new rows with now), so elapsed would
            # be 0.0 across the board — skip the numpy round-trip.
            return
        act = self._active
        elapsed = now - self._last[act]
        # Elementwise-identical to the scalar loop: for elapsed == 0 the
        # expression reduces to max(0, rem - 0) == rem exactly, so the
        # scalar's `elapsed > 0` skip needs no mask here.
        self._rem[act] = np.maximum(0.0, self._rem[act] - self._rate[act] * elapsed)
        self._last[act] = now
        self._settled_at = now

    def _all_slots(self) -> tuple[list[Flow], np.ndarray]:
        """Every attached flow with its slot, in scalar iteration order."""
        slots = np.nonzero(self._active)[0]
        # fids are assigned in insertion order, so sorting by fid
        # reproduces the scalar's `_flows` dict iteration order.
        order = np.argsort(self._fid_arr[slots], kind="stable")
        return list(self._flows), slots[order]

    def _component_slots(self, origin: Flow) -> tuple[list[Flow], np.ndarray]:
        nlinks = self._nlinks
        if nlinks == 0 or not self._flows:
            return [], np.empty(0, dtype=np.int64)
        inc = self._inc[:, :nlinks]
        act = self._active
        nflows = len(self._flows)
        linkmask = np.zeros(nlinks, dtype=bool)
        for link in origin.path:
            j = self._link_idx.get(link)
            if j is not None:
                linkmask[j] = True
        # Fixpoint on the link set (L is small); monotone, so it
        # terminates in at most L rounds.
        while True:
            flowmask = act & (inc[:, linkmask] > 0).any(axis=1)
            if int(flowmask.sum()) == nflows:
                # Already spans every flow — the fixpoint can only
                # confirm that, so skip the remaining rounds.
                return self._all_slots()
            merged = linkmask | (inc[flowmask] > 0).any(axis=0)
            if int(merged.sum()) == int(linkmask.sum()):
                break
            linkmask = merged
        slots = np.nonzero(flowmask)[0]
        order = np.argsort(self._fid_arr[slots], kind="stable")
        slots = slots[order]
        return [self._slot_flow[s] for s in slots.tolist()], slots

    def _component(self, origin: Flow) -> list[Flow]:
        return self._component_slots(origin)[0]

    def _max_min_slots(self, slots: np.ndarray) -> np.ndarray:
        nlinks = self._nlinks
        inc = self._inc[slots][:, :nlinks]
        used = inc.sum(axis=0, dtype=np.int64) > 0
        keys = self._keymat[slots][:, :nlinks].min(axis=0)
        cand = np.nonzero(used)[0]
        link_order = cand[np.argsort(keys[cand], kind="stable")]
        links = self._links
        residual = [0.0] * nlinks
        for j in cand.tolist():
            residual[j] = links[j].capacity
        return _water_fill(inc, link_order, residual)

    def _reallocate(self, origin: Optional[Flow] = None) -> None:
        self._settle()
        if origin is not None:
            affected, slots = self._component_slots(origin)
        else:
            affected, slots = self._all_slots()
        if not affected:
            return
        if len(affected) < SCALAR_CUTOVER:
            # Small component: scalar allocator is faster and (by the
            # bit-identity property) indistinguishable.
            self.scalar_calls += 1
            from .flows import max_min_rates

            rates_map = max_min_rates(affected)
            rates = np.fromiter(
                (rates_map[f] for f in affected),
                dtype=np.float64,
                count=len(affected),
            )
        else:
            self.vector_calls += 1
            rates = self._max_min_slots(slots)
        if rates.size and float(rates.min()) <= _EPS:  # pragma: no cover
            bad = affected[int(rates.argmin())]
            raise FlowError(f"flow {bad.fid} allocated zero rate")
        # Affected flows are all attached (slot >= 0), so the per-flow
        # comparisons and completion delays come straight from the network
        # arrays, batch-converted to Python floats (`tolist` is exact for
        # float64) — no per-flow descriptor round-trips or numpy boxing.
        changed = (rates != self._rate[slots]).tolist()
        delays = (self._rem[slots] / rates).tolist()
        self._rate[slots] = rates
        schedule = self.sim.schedule
        on_drain = self._on_drain
        rescheduled = 0
        for f, ch, delay in zip(affected, changed, delays):
            ev = f._completion_ev
            if ev is not None and ev.alive:
                if not ch:
                    continue
                ev.cancel()
            rescheduled += 1
            f._completion_ev = schedule(delay, on_drain, f)
        self.reschedule_count += rescheduled

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<VectorFlowNetwork active={len(self._flows)}"
            f" done={self.completed_count}>"
        )
