"""Build-on-demand loader for the native C event core.

``_nativecore.c`` ships as source; this module compiles it with the host
C toolchain the first time the native backend is requested and caches the
shared object under ``~/.cache/repro-native/`` (override with
``$REPRO_NATIVE_CACHE``) keyed by a hash of the source, the interpreter
version and the compiler — a source edit or interpreter upgrade triggers
a transparent rebuild, and concurrent builders (``--jobs`` workers) race
benignly via atomic ``os.replace``.

Everything degrades softly: no compiler, no Python headers, a failed
compile or a failed import all make :func:`load_native_core` return
``None`` (cached for the process), and backend auto-selection falls back
to the pure-Python calendar queue.  Set ``$REPRO_NATIVE_DISABLE=1`` to
skip the toolchain probe entirely (used by tests and CI matrix legs that
must exercise the pure-Python backends).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path
from typing import Optional

__all__ = ["load_native_core", "native_cache_dir", "build_error"]

ENV_DISABLE = "REPRO_NATIVE_DISABLE"
ENV_CACHE = "REPRO_NATIVE_CACHE"

_SOURCE = Path(__file__).with_name("_nativecore.c")

# Process-level memo: module object, or False after a failed attempt.
_loaded: object = None
#: last build failure (compiler stderr / exception text) for diagnostics.
build_error: Optional[str] = None


def native_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-native"


def _find_cc() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _cache_key(cc: str) -> str:
    h = hashlib.sha256()
    h.update(_SOURCE.read_bytes())
    h.update(sys.version.encode())
    h.update(cc.encode())
    return h.hexdigest()[:16]


def _load_from(path: Path):
    # the name must match the extension's PyInit__nativecore export
    spec = importlib.util.spec_from_file_location("_nativecore", path)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise ImportError(f"cannot load {path}")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _build(cc: str, out: Path) -> None:
    include = sysconfig.get_path("include")
    if not include or not (Path(include) / "Python.h").exists():
        raise RuntimeError(f"Python.h not found under {include!r}")
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(out.parent), suffix=".so")
    os.close(fd)
    try:
        cmd = [
            cc,
            "-O2",
            "-shared",
            "-fPIC",
            f"-I{include}",
            str(_SOURCE),
            "-o",
            tmp,
        ]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120, check=False
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{' '.join(cmd)} failed:\n{proc.stderr.strip()[:2000]}"
            )
        os.replace(tmp, out)  # atomic: concurrent builders race benignly
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_native_core():
    """The compiled ``_nativecore`` module, or ``None`` if unavailable.

    Never raises; the failure reason is kept in :data:`build_error`.
    """
    global _loaded, build_error
    if _loaded is not None:
        return _loaded or None
    if os.environ.get(ENV_DISABLE, "") not in ("", "0"):
        build_error = f"disabled via ${ENV_DISABLE}"
        _loaded = False
        return None
    try:
        if not _SOURCE.exists():
            raise RuntimeError(f"{_SOURCE} missing")
        cc = _find_cc()
        if cc is None:
            raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
        so = native_cache_dir() / f"_nativecore-{_cache_key(cc)}.so"
        if not so.exists():
            _build(cc, so)
        mod = _load_from(so)
        from .engine import ScheduleInPastError, SimulationError

        mod._set_error_classes(SimulationError, ScheduleInPastError)
        _loaded = mod
        return mod
    except Exception as exc:  # noqa: BLE001 - soft-fail to pure Python
        build_error = f"{type(exc).__name__}: {exc}"
        _loaded = False
        return None
