"""Kernel backend selection: heap, calendar and native event cores.

The simulation kernel has three co-resident implementations behind the
one :class:`~repro.sim.engine.Simulator` API (see DESIGN.md "Kernel
backends"):

``heap``
    The original tombstoned binary heap (``engine.py``).  Pure Python,
    battle-tested, kept unchanged as the differential-testing reference.
``calendar``
    A pure-Python calendar queue (``calendar_queue.py``): events are
    binned into time windows, popped as batch-sorted windows instead of
    per-event heap operations.  Wins on cancellation churn and widely
    spread timestamps; a sorted-spine fallback keeps small queues (the
    ladder's bottom rung) at heap speed.
``native``
    A hand-written CPython extension (``_nativecore.c``): the event heap
    is a C array of structs and the run loop never re-enters Python
    between events.  Built on demand with the system C compiler and
    cached; unavailable when no compiler is present.

Selection (first match wins):

1. ``Simulator(backend="...")`` / ``Session(backend="...")``;
2. the ``REPRO_SIM_BACKEND`` environment variable (this is how
   ``repro bench run --backend`` propagates the choice to ``--jobs``
   worker processes — the env var is inherited on fork and spawn);
3. ``auto``: ``native`` when a compiler is available, else ``calendar``.

Every backend preserves the exact ``(time, seq)`` pop order, so figure
results are bit-identical across backends — CI gates on this with a
``--sim-tol 0`` cross-backend compare.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "available_backends",
    "native_available",
    "resolve_backend",
    "simulator_class",
    "flows_mode",
    "FLOWS_MODES",
]

#: selectable kernel backends (``auto`` resolves to one of these).
BACKEND_NAMES = ("heap", "calendar", "native")

#: selectable flow-allocator modes (see :mod:`repro.sim.flows_vec`).
FLOWS_MODES = ("scalar", "vector")

ENV_BACKEND = "REPRO_SIM_BACKEND"
ENV_FLOWS = "REPRO_SIM_FLOWS"


class BackendUnavailableError(RuntimeError):
    """An explicitly requested backend cannot be provided on this host."""


def native_available() -> bool:
    """True when the compiled native core can be imported (builds and
    caches it on first call; never raises)."""
    from .native_build import load_native_core

    return load_native_core() is not None


def available_backends() -> list[str]:
    """Backends usable on this host, in preference order."""
    names = ["heap", "calendar"]
    if native_available():
        names.append("native")
    return names


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete backend name.

    ``name`` of ``None`` falls back to ``$REPRO_SIM_BACKEND``, then to
    ``auto``.  ``auto`` prefers the native core and falls back to the
    pure-Python calendar queue.  Explicitly requesting ``native`` on a
    host without a C toolchain raises :class:`BackendUnavailableError`
    (``auto`` never does).
    """
    req = (name or os.environ.get(ENV_BACKEND, "") or "auto").strip().lower()
    if req == "auto":
        return "native" if native_available() else "calendar"
    if req not in BACKEND_NAMES:
        raise ValueError(
            f"unknown simulator backend {req!r}; choose from "
            f"{('auto',) + BACKEND_NAMES}"
        )
    if req == "native" and not native_available():
        raise BackendUnavailableError(
            "native backend requested but no C compiler / python headers"
            " are available on this host (set REPRO_SIM_BACKEND=calendar"
            " or =heap, or install a C toolchain)"
        )
    return req


def simulator_class(name: str):
    """The concrete :class:`Simulator` subclass for a resolved backend."""
    if name == "heap":
        from .engine import Simulator

        return Simulator
    if name == "calendar":
        from .calendar_queue import CalendarSimulator

        return CalendarSimulator
    if name == "native":
        from .native import NativeSimulator

        return NativeSimulator
    raise ValueError(f"unknown simulator backend {name!r}")


def flows_mode(name: Optional[str] = None) -> str:
    """Resolve the flow-allocator mode (``scalar`` or ``vector``).

    ``None`` falls back to ``$REPRO_SIM_FLOWS``, then ``auto``.  ``auto``
    selects ``vector`` when numpy is importable (the vector network
    transparently uses the scalar algorithm for small components, so it
    is never a pessimisation), else ``scalar``.
    """
    req = (name or os.environ.get(ENV_FLOWS, "") or "auto").strip().lower()
    if req == "auto":
        try:
            import numpy  # noqa: F401

            return "vector"
        except ImportError:  # pragma: no cover - numpy is a core test dep
            return "scalar"
    if req not in FLOWS_MODES:
        raise ValueError(
            f"unknown flows mode {req!r}; choose from {('auto',) + FLOWS_MODES}"
        )
    if req == "vector":
        try:
            import numpy  # noqa: F401
        except ImportError:  # pragma: no cover - numpy is a core test dep
            raise BackendUnavailableError(
                "vector flows requested but numpy is not importable"
            ) from None
    return req
