"""Calendar-queue event core (pure Python ``calendar`` backend).

A calendar queue (Brown 1988) bins future events into fixed-width time
windows ("days") hashed over a power-of-two bucket array ("years" wrap).
Popping drains one window at a time: the due window's entries are
extracted in a batch, sorted once with a C-level tuple sort, and consumed
by a cursor.  Compared with a binary heap this replaces two O(log n)
Python-object comparisons per event with amortised O(1) list operations,
and — crucially for this codebase's timer-churn workloads — cancellation
leaves no tombstone to sift around: dead entries are dropped wholesale
during window extraction and resize sweeps, never ``heapify``-ed.

Layout ("array of structs" per window)
--------------------------------------
Entries are plain tuples ``(time, seq, vbucket, handle)``; comparisons
stay entirely in C (``time`` and ``seq`` decide before the tuple compare
could ever reach the handle).  ``vbucket = int(time / width)`` is the
*virtual* bucket index; the physical bucket is ``vbucket & mask``.  An
entry belongs to the current window iff its virtual index equals the
cursor's — an exact integer comparison, immune to the float-boundary
ambiguity of ``t < window_end`` tests.

The ladder rung for small queues
--------------------------------
Calendar queues shine from a few dozen events upward; below that the
window machinery costs more than it saves.  Like a ladder queue's bottom
rung, queues of up to :data:`~CalendarSimulator.SPINE_MAX` resident
entries are kept in a single sorted list (the *spine*) consumed by a head
cursor — ``bisect.insort`` on C-comparable tuples is as fast as a heap
push and pop-front is O(1).  Exceeding the bound promotes the spine into
calendar buckets (sampling the gap distribution to pick the width);
a fully drained calendar demotes back.

Exactness
---------
Pop order is exactly ``(time, seq)`` — bit-identical to the heap
backend for any schedule/cancel program, which the differential property
suite (``tests/property/test_backend_diff.py``) asserts.  Window
membership, promotion and resize points are all functions of the event
times alone, so serial and ``--jobs`` runs behave identically.

Skew handling: the width is re-sampled (3–4× the mean inter-event gap)
whenever occupancy or tombstone pressure trips a resize, and a window
load that finds a whole calendar year empty jumps the cursor straight to
the global minimum instead of stepping bucket by bucket — the two
adaptations that keep heavily skewed timestamp distributions from
degenerating into one-event windows or year-long scans.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Any, Callable, Optional

from .engine import EventHandle, ScheduleInPastError, SimulationError, Simulator

__all__ = ["CalendarSimulator"]


class CalendarSimulator(Simulator):
    """Calendar-queue implementation of the :class:`Simulator` API."""

    backend = "calendar"

    #: largest resident (live + dead) population served by the spine.
    SPINE_MAX = 64
    #: physical bucket counts (always powers of two).
    MIN_BUCKETS = 16
    MAX_BUCKETS = 1 << 16
    #: window width as a multiple of the sampled mean inter-event gap.
    WIDTH_GAP_FACTOR = 3.0
    #: entries sampled (sorted prefix) for the width estimate.
    WIDTH_SAMPLE = 256

    def __init__(self, backend: Optional[str] = None) -> None:
        self._now: float = 0.0
        self._fifo: deque[EventHandle] = deque()
        self._seq: int = 0
        self._running = False
        self._events_executed: int = 0
        self._live: int = 0
        #: cancelled entries still resident in spine/buckets/batch.
        self._dead: int = 0
        self._resizes: int = 0
        # -- spine (bottom rung) ----------------------------------------
        self._spine_mode = True
        self._spine: list[tuple] = []  # (time, seq, ev), sorted ascending
        self._head = 0
        # -- calendar ---------------------------------------------------
        self._nb = self.MIN_BUCKETS
        self._mask = self._nb - 1
        self._width = 1.0
        self._inv_width = 1.0
        self._buckets: list[list[tuple]] = []
        self._size = 0  # entries resident in buckets (live + dead)
        self._cur_vb = 0  # virtual bucket currently being drained
        self._batch: list[tuple] = []  # sorted entries of the current window
        self._bpos = 0
        self._dirty = False  # batch gained entries; re-sort before use
        self._need_resize = False

    # ------------------------------------------------------------------ #
    # introspection (API parity with the heap backend)
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        return self._now

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def events_scheduled(self) -> int:
        return self._seq

    @property
    def pending(self) -> int:
        return self._live

    @property
    def heap_compactions(self) -> int:
        """Always 0: there is no heap, hence no heap compaction.

        Tombstones are swept inline during window extraction and resize;
        see :attr:`calendar_resizes` for the backend-specific counter.
        """
        return 0

    @property
    def tombstone_ratio(self) -> float:
        """Always 0.0 — reported clean so dashboards never show a stale
        heap statistic while the calendar backend is active."""
        return 0.0

    @property
    def calendar_resizes(self) -> int:
        """Bucket-array rebuilds (width re-sampling sweeps) so far."""
        return self._resizes

    @property
    def spine_active(self) -> bool:
        """True while the small-queue sorted spine is in use."""
        return self._spine_mode

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        if delay < 0:
            raise ScheduleInPastError(f"negative delay {delay!r}")
        return self.at(self._now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        now = self._now
        if time < now:
            raise ScheduleInPastError(
                f"cannot schedule at {time!r}, current time is {now!r}"
            )
        self._seq += 1
        self._live += 1
        if time == now:
            ev = EventHandle(time, self._seq, fn, args, self, in_heap=False)
            self._fifo.append(ev)
            return ev
        ev = EventHandle(time, self._seq, fn, args, self)
        if self._spine_mode:
            # lo=_head: the consumed prefix may retain skipped tombstones
            # with arbitrary times — inserting before the cursor would
            # make the new entry invisible.
            insort(self._spine, (time, self._seq, ev), lo=self._head)
            if len(self._spine) - self._head > self.SPINE_MAX:
                self._promote()
            return ev
        vb = int(time * self._inv_width)
        cur = self._cur_vb
        if vb <= cur:
            if vb == cur:
                self._batch.append((time, self._seq, vb, ev))
                self._dirty = True
                return ev
            # The cursor fast-forwarded past this window (sparse jump);
            # pull it back and refile the in-flight batch.
            buckets = self._buckets
            mask = self._mask
            for e in self._batch[self._bpos :]:
                buckets[e[2] & mask].append(e)
                self._size += 1
            self._batch = []
            self._bpos = 0
            self._dirty = False
            self._cur_vb = vb
        self._buckets[vb & self._mask].append((time, self._seq, vb, ev))
        self._size += 1
        if self._size > 2 * self._nb and self._nb < self.MAX_BUCKETS:
            self._need_resize = True
        return ev

    # ------------------------------------------------------------------ #
    # cancellation bookkeeping
    # ------------------------------------------------------------------ #
    def _note_cancel(self, ev: EventHandle) -> None:
        self._live -= 1
        if not ev._in_heap:
            return  # fifo-lane entries are skipped on popleft
        self._dead += 1
        if self._spine_mode:
            resident = len(self._spine) - self._head
            if self._dead >= 16 and self._dead * 2 >= resident:
                spine = self._spine
                spine[:] = [e for e in spine[self._head :] if e[2]._alive]
                self._head = 0
                self._dead = 0
        elif self._dead >= 64 and self._dead * 2 >= self._size + (
            len(self._batch) - self._bpos
        ):
            self._need_resize = True

    # ------------------------------------------------------------------ #
    # spine <-> calendar transitions
    # ------------------------------------------------------------------ #
    def _promote(self) -> None:
        """Move the spine into calendar buckets (width from spine gaps)."""
        entries = [e for e in self._spine[self._head :] if e[2]._alive]
        self._spine = []
        self._head = 0
        self._spine_mode = False
        self._install(entries)

    def _sample_width(self, times: list[float]) -> float:
        """3x the mean positive gap of a sorted time sample (>= 1e-9)."""
        gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
        if not gaps:
            return max(self._width, 1e-9)
        return max(sum(gaps) / len(gaps) * self.WIDTH_GAP_FACTOR, 1e-9)

    def _install(self, entries: list[tuple]) -> None:
        """(Re)build the bucket array around the live ``entries``.

        ``entries`` may be 3-tuples (from the spine) or 4-tuples (from a
        resize); only ``[0]`` (time), ``[1]`` (seq) and ``[-1]`` (handle)
        are read.
        """
        n = len(entries)
        nb = self.MIN_BUCKETS
        while nb < n and nb < self.MAX_BUCKETS:
            nb <<= 1
        # Sample times with an even stride across the whole entry set: on
        # a resize, entries arrive grouped by physical bucket, so a
        # contiguous prefix spans a few year-wrapped buckets and its gaps
        # overstate the true inter-event spacing (inflating the width
        # geometrically across resizes).  The strided sample's mean gap
        # is ~stride times the per-event gap; divide it back out.
        stride = max(1, n // self.WIDTH_SAMPLE)
        sample = sorted(e[0] for e in entries[::stride])
        width = max(self._sample_width(sample) / stride, 1e-9)
        self._nb = nb
        self._mask = nb - 1
        self._width = width
        self._inv_width = inv = 1.0 / width
        self._buckets = buckets = [[] for _ in range(nb)]
        self._size = n
        self._dead = 0
        self._cur_vb = int(self._now * inv)
        self._batch = []
        self._bpos = 0
        self._dirty = False
        self._need_resize = False
        mask = self._mask
        for e in entries:
            t = e[0]
            vb = int(t * inv)
            buckets[vb & mask].append((t, e[1], vb, e[-1]))
        self._resizes += 1

    def _resize(self) -> None:
        """Rebuild buckets without tombstones, re-sampling the width."""
        entries = [e for b in self._buckets for e in b if e[3]._alive]
        for e in self._batch[self._bpos :]:
            if e[3]._alive:
                entries.append(e)
        self._install(entries)

    # ------------------------------------------------------------------ #
    # window machinery
    # ------------------------------------------------------------------ #
    def _load_next(self) -> bool:
        """Load the next non-empty window into the batch.

        Returns False when the calendar is fully drained (and demotes
        back to the spine for the next burst of scheduling).
        """
        if self._need_resize:
            self._resize()
        if self._size == 0:
            self._spine_mode = True
            self._dead = 0
            return False
        buckets = self._buckets
        mask = self._mask
        vb = self._cur_vb
        for step in range(self._nb):
            b = buckets[(vb + step) & mask]
            if b:
                target = vb + step
                if self._extract(b, target):
                    return True
                if self._size == 0:
                    self._spine_mode = True
                    self._dead = 0
                    return False
        # A whole calendar year is empty: jump straight to the minimum
        # virtual bucket instead of stepping window by window.
        best = None
        for b in buckets:
            for e in b:
                if e[3]._alive and (best is None or e[2] < best):
                    best = e[2]
        if best is None:  # only tombstones remain
            for b in buckets:
                b.clear()
            self._size = 0
            self._dead = 0
            self._spine_mode = True
            return False
        return self._extract(buckets[best & mask], best)

    def _extract(self, bucket: list[tuple], target: int) -> bool:
        """Pull window ``target`` out of ``bucket`` into the sorted batch."""
        batch = []
        keep = []
        dead = 0
        for e in bucket:
            if e[2] == target:
                if e[3]._alive:
                    batch.append(e)
                else:
                    dead += 1
            else:
                keep.append(e)
        removed = len(bucket) - len(keep)
        if removed:
            bucket[:] = keep
            self._size -= removed
            self._dead -= dead
        self._cur_vb = target
        if not batch:
            return False
        batch.sort()
        self._batch = batch
        self._bpos = 0
        self._dirty = False
        return True

    def _next_entry(self) -> Optional[tuple]:
        """Peek the next non-fifo entry (left in place), or None.

        Advances cursors past tombstones and loads windows as needed;
        time only ever moves forward, so peeking commutes with popping.
        """
        if self._spine_mode:
            spine = self._spine
            head = self._head
            n = len(spine)
            while head < n and not spine[head][2]._alive:
                head += 1
                self._dead -= 1
            self._head = head
            if head < n:
                return spine[head]
            if head:
                del spine[:]
                self._head = 0
            return None
        while True:
            if self._dirty:
                rest = self._batch[self._bpos :]
                rest.sort()
                self._batch = rest
                self._bpos = 0
                self._dirty = False
            batch = self._batch
            pos = self._bpos
            n = len(batch)
            while pos < n:
                e = batch[pos]
                if e[3]._alive:
                    self._bpos = pos
                    return e
                pos += 1
                self._dead -= 1
            self._bpos = pos
            if batch:
                self._batch = []
                self._bpos = 0
            if not self._load_next():
                return None

    def _consume(self) -> None:
        """Advance past the entry just returned by :meth:`_next_entry`."""
        if self._spine_mode:
            head = self._head + 1
            if head >= 512 and head * 2 >= len(self._spine):
                del self._spine[:head]
                self._head = 0
            else:
                self._head = head
        else:
            self._bpos += 1

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def peek_next_time(self) -> Optional[float]:
        fifo = self._fifo
        while fifo and not fifo[0]._alive:
            fifo.popleft()
        entry = self._next_entry()
        t = entry[0] if entry is not None else None
        if fifo:
            ft = fifo[0].time
            if t is None or ft < t:
                t = ft
        return t

    def step(self) -> bool:
        fifo = self._fifo
        while fifo and not fifo[0]._alive:
            fifo.popleft()
        entry = self._next_entry()
        if fifo:
            fev = fifo[0]
            if entry is not None and (entry[0], entry[1]) < (fev.time, fev.seq):
                self._consume()
                ev = entry[-1]
            else:
                ev = fifo.popleft()
        elif entry is not None:
            self._consume()
            ev = entry[-1]
        else:
            return False
        self._fire(ev)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        fifo = self._fifo
        popleft = fifo.popleft
        try:
            while True:
                while fifo and not fifo[0]._alive:
                    popleft()
                entry = self._next_entry()
                if fifo:
                    fev = fifo[0]
                    if entry is not None and (entry[0], entry[1]) < (fev.time, fev.seq):
                        ev = entry[-1]
                        t = entry[0]
                        from_fifo = False
                    else:
                        ev = fev
                        t = fev.time
                        from_fifo = True
                elif entry is not None:
                    ev = entry[-1]
                    t = entry[0]
                    from_fifo = False
                else:
                    break
                if until is not None and t > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                if from_fifo:
                    popleft()
                else:
                    self._consume()
                executed += 1
                self._now = t
                ev._fired = True
                self._live -= 1
                fn = ev.fn
                args = ev.args
                ev.fn = None
                ev.args = ()
                self._events_executed += 1
                fn(*args)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        self.run(max_events=max_events)
        if self._live:
            raise SimulationError(
                f"simulation did not converge within {max_events} events"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "spine" if self._spine_mode else f"cal nb={self._nb} w={self._width:g}"
        return (
            f"<Simulator backend=calendar ({mode}) t={self._now:.3f}"
            f" pending={self._live}>"
        )
