/* Native event core for the repro simulation kernel ("native" backend).
 *
 * The hot state lives outside the Python object graph:
 *
 *   - the event heap is a C array of {time, seq, event*} structs keyed by
 *     (time, seq) — sifting moves 24-byte structs, never touches
 *     refcounts and never calls back into Python for comparisons;
 *   - the zero-delay lane is a C pointer ring consumed by a head cursor;
 *   - the run loop pops, advances the clock and invokes the callback with
 *     one PyObject_Call per event — no interpreter frames between events.
 *
 * Semantics are bit-identical to the pure-Python heap backend
 * (engine.py): same (time, seq) pop order, same zero-delay FIFO lane,
 * same lazy cancellation with tombstone compaction (floor 64 dead +
 * half-heap ratio), same `until` clock clamp.  The differential property
 * suite (tests/property/test_backend_diff.py) asserts this.
 *
 * Event handles are real PyObjects (cancellation and introspection need
 * them to outlive the pop), allocated per schedule; the handle <-> core
 * reference cycle is GC-tracked and broken eagerly on fire/cancel.
 *
 * Error classes are injected from Python via _set_error_classes() so the
 * module never imports repro.* (no circular import at build time).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* ------------------------------------------------------------------ */
/* module-level error classes (injected; fall back to RuntimeError)    */
static PyObject *SimulationError = NULL;
static PyObject *ScheduleInPastError = NULL;
static PyObject *empty_tuple = NULL;

static PyObject *
sim_err(void)
{
    return SimulationError ? SimulationError : PyExc_RuntimeError;
}

static PyObject *
past_err(void)
{
    return ScheduleInPastError ? ScheduleInPastError : PyExc_ValueError;
}

/* ------------------------------------------------------------------ */
typedef struct CoreObject CoreObject;

typedef struct {
    PyObject_HEAD
    double time;
    long long seq;
    PyObject *fn;     /* NULL once fired or cancelled */
    PyObject *args;   /* tuple; NULL once fired or cancelled */
    CoreObject *core; /* owned backref while pending; NULL afterwards */
    char alive;       /* 0 after cancel */
    char fired;
    char in_heap;     /* 0 for zero-delay (fifo lane) events */
} EventObject;

typedef struct {
    double t;
    long long seq;
    EventObject *ev; /* owned */
} entry_t;

struct CoreObject {
    PyObject_HEAD
    double now;
    long long seq;
    long long executed;
    long long live;
    long long dead; /* tombstones resident in the heap */
    long long compactions;
    long long compact_min_dead;
    int running;
    entry_t *heap;
    Py_ssize_t heap_len, heap_cap;
    EventObject **fifo; /* owned refs in [fifo_head, fifo_head+fifo_len) */
    Py_ssize_t fifo_head, fifo_len, fifo_cap;
};

static PyTypeObject EventType;
static PyTypeObject CoreType;

/* ------------------------------------------------------------------ */
/* Event                                                               */
/* ------------------------------------------------------------------ */

static void
event_break_core(EventObject *ev)
{
    CoreObject *core = ev->core;
    if (core) {
        ev->core = NULL;
        Py_DECREF((PyObject *)core);
    }
}

static int
event_traverse(EventObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->fn);
    Py_VISIT(self->args);
    Py_VISIT((PyObject *)self->core);
    return 0;
}

static int
event_clear(EventObject *self)
{
    Py_CLEAR(self->fn);
    Py_CLEAR(self->args);
    event_break_core(self);
    return 0;
}

static void
event_dealloc(EventObject *self)
{
    PyObject_GC_UnTrack(self);
    event_clear(self);
    PyObject_GC_Del(self);
}

static PyObject *
event_cancel(EventObject *self, PyObject *Py_UNUSED(ignored))
{
    if (!self->alive || self->fired)
        Py_RETURN_FALSE;
    self->alive = 0;
    Py_CLEAR(self->fn);
    Py_CLEAR(self->args);
    CoreObject *core = self->core;
    if (core) {
        core->live--;
        if (self->in_heap) {
            core->dead++;
            /* same policy as the heap backend: floor + half-heap ratio */
            if (core->dead >= core->compact_min_dead &&
                core->dead * 2 >= (long long)core->heap_len) {
                Py_ssize_t j = 0, i;
                for (i = 0; i < core->heap_len; i++) {
                    EventObject *e = core->heap[i].ev;
                    if (e->alive) {
                        core->heap[j++] = core->heap[i];
                    }
                    else {
                        Py_DECREF((PyObject *)e);
                    }
                }
                core->heap_len = j;
                core->dead = 0;
                core->compactions++;
                /* entries keep unique (t, seq) keys: heapify restores the
                 * exact pop order of the unfiltered heap */
                for (i = j / 2 - 1; i >= 0; i--) {
                    entry_t item = core->heap[i];
                    Py_ssize_t pos = i;
                    for (;;) {
                        Py_ssize_t child = 2 * pos + 1;
                        if (child >= j)
                            break;
                        if (child + 1 < j) {
                            entry_t *a = &core->heap[child];
                            entry_t *b = &core->heap[child + 1];
                            if (b->t < a->t || (b->t == a->t && b->seq < a->seq))
                                child++;
                        }
                        entry_t *c = &core->heap[child];
                        if (c->t < item.t ||
                            (c->t == item.t && c->seq < item.seq)) {
                            core->heap[pos] = *c;
                            pos = child;
                        }
                        else
                            break;
                    }
                    core->heap[pos] = item;
                }
            }
        }
        event_break_core(self);
    }
    Py_RETURN_TRUE;
}

static PyObject *
event_get_alive(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->alive && !self->fired);
}

static PyObject *
event_get_fired(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->fired);
}

static PyObject *
event_get_time(EventObject *self, void *closure)
{
    return PyFloat_FromDouble(self->time);
}

static PyObject *
event_get_seq(EventObject *self, void *closure)
{
    return PyLong_FromLongLong(self->seq);
}

static PyObject *
event_get_fn(EventObject *self, void *closure)
{
    PyObject *fn = self->fn ? self->fn : Py_None;
    Py_INCREF(fn);
    return fn;
}

static PyObject *
event_get_args(EventObject *self, void *closure)
{
    PyObject *args = self->args ? self->args : empty_tuple;
    Py_INCREF(args);
    return args;
}

static PyObject *
event_repr(EventObject *self)
{
    const char *state =
        self->fired ? "fired" : (self->alive ? "pending" : "cancelled");
    char buf[64];
    snprintf(buf, sizeof(buf), "%.3f", self->time);
    return PyUnicode_FromFormat("<NativeEvent t=%s seq=%lld %s>", buf,
                                self->seq, state);
}

static PyMethodDef event_methods[] = {
    {"cancel", (PyCFunction)event_cancel, METH_NOARGS,
     "Cancel the event; True if it was pending."},
    {NULL},
};

static PyGetSetDef event_getset[] = {
    {"alive", (getter)event_get_alive, NULL, "pending (not fired/cancelled)"},
    {"fired", (getter)event_get_fired, NULL, "callback already executed"},
    {"time", (getter)event_get_time, NULL, "scheduled absolute time"},
    {"seq", (getter)event_get_seq, NULL, "FIFO tie-break sequence number"},
    {"fn", (getter)event_get_fn, NULL, "callback (None once fired/cancelled)"},
    {"args", (getter)event_get_args, NULL, "callback args"},
    {NULL},
};

static PyTypeObject EventType = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "_nativecore.NativeEvent",
    .tp_basicsize = sizeof(EventObject),
    .tp_dealloc = (destructor)event_dealloc,
    .tp_repr = (reprfunc)event_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Handle to an event scheduled on a native Core.",
    .tp_traverse = (traverseproc)event_traverse,
    .tp_clear = (inquiry)event_clear,
    .tp_methods = event_methods,
    .tp_getset = event_getset,
};

/* ------------------------------------------------------------------ */
/* Core internals                                                      */
/* ------------------------------------------------------------------ */

static int
heap_push(CoreObject *core, double t, long long seq, EventObject *ev)
{
    /* steals a reference to ev */
    if (core->heap_len == core->heap_cap) {
        Py_ssize_t ncap = core->heap_cap ? core->heap_cap * 2 : 64;
        entry_t *nh = PyMem_Realloc(core->heap, ncap * sizeof(entry_t));
        if (!nh) {
            Py_DECREF((PyObject *)ev);
            PyErr_NoMemory();
            return -1;
        }
        core->heap = nh;
        core->heap_cap = ncap;
    }
    Py_ssize_t pos = core->heap_len++;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        entry_t *p = &core->heap[parent];
        if (t < p->t || (t == p->t && seq < p->seq)) {
            core->heap[pos] = *p;
            pos = parent;
        }
        else
            break;
    }
    core->heap[pos].t = t;
    core->heap[pos].seq = seq;
    core->heap[pos].ev = ev;
    return 0;
}

static entry_t
heap_pop(CoreObject *core)
{
    /* caller owns the returned entry's ev reference */
    entry_t top = core->heap[0];
    Py_ssize_t n = --core->heap_len;
    if (n > 0) {
        entry_t item = core->heap[n];
        Py_ssize_t pos = 0;
        for (;;) {
            Py_ssize_t child = 2 * pos + 1;
            if (child >= n)
                break;
            if (child + 1 < n) {
                entry_t *a = &core->heap[child];
                entry_t *b = &core->heap[child + 1];
                if (b->t < a->t || (b->t == a->t && b->seq < a->seq))
                    child++;
            }
            entry_t *c = &core->heap[child];
            if (c->t < item.t || (c->t == item.t && c->seq < item.seq)) {
                core->heap[pos] = *c;
                pos = child;
            }
            else
                break;
        }
        core->heap[pos] = item;
    }
    return top;
}

static void
core_drop_dead_tops(CoreObject *core)
{
    while (core->fifo_len) {
        EventObject *f = core->fifo[core->fifo_head];
        if (f->alive)
            break;
        core->fifo_head++;
        core->fifo_len--;
        if (core->fifo_len == 0)
            core->fifo_head = 0;
        Py_DECREF((PyObject *)f);
    }
    while (core->heap_len && !core->heap[0].ev->alive) {
        entry_t top = heap_pop(core);
        core->dead--;
        Py_DECREF((PyObject *)top.ev);
    }
}

static int
fifo_push(CoreObject *core, EventObject *ev)
{
    /* steals a reference to ev */
    if (core->fifo_head + core->fifo_len == core->fifo_cap) {
        if (core->fifo_head > 0) {
            memmove(core->fifo, core->fifo + core->fifo_head,
                    core->fifo_len * sizeof(EventObject *));
            core->fifo_head = 0;
        }
        if (core->fifo_len == core->fifo_cap) {
            Py_ssize_t ncap = core->fifo_cap ? core->fifo_cap * 2 : 16;
            EventObject **nf =
                PyMem_Realloc(core->fifo, ncap * sizeof(EventObject *));
            if (!nf) {
                Py_DECREF((PyObject *)ev);
                PyErr_NoMemory();
                return -1;
            }
            core->fifo = nf;
            core->fifo_cap = ncap;
        }
    }
    core->fifo[core->fifo_head + core->fifo_len++] = ev;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Core methods                                                        */
/* ------------------------------------------------------------------ */

static PyObject *
core_at_impl(CoreObject *core, PyObject *time_obj, PyObject *const *cb,
             Py_ssize_t ncb)
{
    double t = PyFloat_AsDouble(time_obj);
    if (t == -1.0 && PyErr_Occurred())
        return NULL;
    if (t < core->now) {
        PyObject *now_obj = PyFloat_FromDouble(core->now);
        if (now_obj) {
            PyErr_Format(past_err(),
                         "cannot schedule at %R, current time is %R",
                         time_obj, now_obj);
            Py_DECREF(now_obj);
        }
        return NULL;
    }
    PyObject *fn = cb[0];
    PyObject *args;
    if (ncb == 1) {
        args = empty_tuple;
        Py_INCREF(args);
    }
    else {
        args = PyTuple_New(ncb - 1);
        if (!args)
            return NULL;
        for (Py_ssize_t i = 1; i < ncb; i++) {
            Py_INCREF(cb[i]);
            PyTuple_SET_ITEM(args, i - 1, cb[i]);
        }
    }
    EventObject *ev = PyObject_GC_New(EventObject, &EventType);
    if (!ev) {
        Py_DECREF(args);
        return NULL;
    }
    core->seq++;
    core->live++;
    ev->time = t;
    ev->seq = core->seq;
    Py_INCREF(fn);
    ev->fn = fn;
    ev->args = args;
    Py_INCREF((PyObject *)core);
    ev->core = core;
    ev->alive = 1;
    ev->fired = 0;
    ev->in_heap = (t != core->now);
    PyObject_GC_Track((PyObject *)ev);
    Py_INCREF((PyObject *)ev); /* the container's reference */
    int rc = ev->in_heap ? heap_push(core, t, ev->seq, ev)
                         : fifo_push(core, ev);
    if (rc < 0) {
        /* container ref consumed by the failed push; undo bookkeeping */
        core->live--;
        ev->alive = 0;
        Py_DECREF((PyObject *)ev);
        return NULL;
    }
    return (PyObject *)ev;
}

static PyObject *
core_at(CoreObject *core, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError, "at(time, fn, *args)");
        return NULL;
    }
    return core_at_impl(core, args[0], args + 1, nargs - 1);
}

static PyObject *
core_schedule(CoreObject *core, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError, "schedule(delay, fn, *args)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(past_err(), "negative delay %R", args[0]);
        return NULL;
    }
    PyObject *time_obj = PyFloat_FromDouble(core->now + delay);
    if (!time_obj)
        return NULL;
    PyObject *res = core_at_impl(core, time_obj, args + 1, nargs - 1);
    Py_DECREF(time_obj);
    return res;
}

/* pick the next event to fire; NULL when idle.  Caller owns the ref. */
static EventObject *
core_pop_next(CoreObject *core, double *t_out)
{
    core_drop_dead_tops(core);
    if (core->fifo_len) {
        EventObject *f = core->fifo[core->fifo_head];
        if (core->heap_len &&
            (core->heap[0].t < f->time ||
             (core->heap[0].t == f->time && core->heap[0].seq < f->seq))) {
            entry_t top = heap_pop(core);
            *t_out = top.t;
            return top.ev;
        }
        core->fifo_head++;
        core->fifo_len--;
        if (core->fifo_len == 0)
            core->fifo_head = 0;
        *t_out = f->time;
        return f;
    }
    if (core->heap_len) {
        entry_t top = heap_pop(core);
        *t_out = top.t;
        return top.ev;
    }
    return NULL;
}

/* peek (t, seq) of the next event without consuming; 0 when idle */
static int
core_peek_next(CoreObject *core, double *t_out)
{
    core_drop_dead_tops(core);
    if (core->fifo_len) {
        EventObject *f = core->fifo[core->fifo_head];
        if (core->heap_len && core->heap[0].t < f->time) {
            *t_out = core->heap[0].t;
            return 1;
        }
        *t_out = f->time;
        return 1;
    }
    if (core->heap_len) {
        *t_out = core->heap[0].t;
        return 1;
    }
    return 0;
}

static int
core_fire(CoreObject *core, EventObject *ev, double t)
{
    /* consumes the caller's reference to ev */
    core->now = t;
    ev->fired = 1;
    core->live--;
    core->executed++;
    PyObject *fn = ev->fn;
    ev->fn = NULL;
    PyObject *args = ev->args;
    ev->args = NULL;
    event_break_core(ev);
    Py_DECREF((PyObject *)ev);
    if (!fn) {
        /* defensive: a live event always has its callback */
        Py_XDECREF(args);
        PyErr_SetString(sim_err(), "live event lost its callback");
        return -1;
    }
    PyObject *res = PyObject_Call(fn, args ? args : empty_tuple, NULL);
    Py_DECREF(fn);
    Py_XDECREF(args);
    if (!res)
        return -1;
    Py_DECREF(res);
    return 0;
}

static PyObject *
core_run(CoreObject *core, PyObject *const *args, Py_ssize_t nargs)
{
    /* run(until_or_None, max_events_or_None) — positional only; the
     * Python wrapper provides the keyword-friendly signature. */
    double until = 0.0;
    int have_until = 0;
    long long max_events = -1;
    if (nargs >= 1 && args[0] != Py_None) {
        until = PyFloat_AsDouble(args[0]);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
        have_until = 1;
    }
    if (nargs >= 2 && args[1] != Py_None) {
        max_events = PyLong_AsLongLong(args[1]);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
    }
    if (core->running) {
        PyErr_SetString(sim_err(), "simulator is not reentrant");
        return NULL;
    }
    core->running = 1;
    long long executed = 0;
    for (;;) {
        double t;
        if (!core_peek_next(core, &t))
            break;
        if (have_until && t > until)
            break;
        if (max_events >= 0 && executed >= max_events)
            break;
        EventObject *ev = core_pop_next(core, &t);
        executed++;
        if (core_fire(core, ev, t) < 0) {
            core->running = 0;
            return NULL;
        }
    }
    if (have_until && core->now < until)
        core->now = until;
    core->running = 0;
    Py_RETURN_NONE;
}

static PyObject *
core_step(CoreObject *core, PyObject *Py_UNUSED(ignored))
{
    double t;
    EventObject *ev = core_pop_next(core, &t);
    if (!ev)
        Py_RETURN_FALSE;
    if (core_fire(core, ev, t) < 0)
        return NULL;
    Py_RETURN_TRUE;
}

static PyObject *
core_peek_next_time(CoreObject *core, PyObject *Py_UNUSED(ignored))
{
    double t;
    if (!core_peek_next(core, &t))
        Py_RETURN_NONE;
    return PyFloat_FromDouble(t);
}

/* ------------------------------------------------------------------ */
/* Core lifecycle                                                      */
/* ------------------------------------------------------------------ */

static PyObject *
core_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CoreObject *core = (CoreObject *)type->tp_alloc(type, 0);
    if (!core)
        return NULL;
    core->now = 0.0;
    core->compact_min_dead = 64;
    return (PyObject *)core;
}

static int
core_traverse(CoreObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->heap_len; i++)
        Py_VISIT((PyObject *)self->heap[i].ev);
    for (Py_ssize_t i = 0; i < self->fifo_len; i++)
        Py_VISIT((PyObject *)self->fifo[self->fifo_head + i]);
    return 0;
}

static int
core_clear_impl(CoreObject *self)
{
    Py_ssize_t i;
    Py_ssize_t hn = self->heap_len, fn = self->fifo_len, fh = self->fifo_head;
    self->heap_len = 0;
    self->fifo_len = 0;
    self->fifo_head = 0;
    for (i = 0; i < hn; i++)
        Py_CLEAR(self->heap[i].ev);
    for (i = 0; i < fn; i++)
        Py_CLEAR(self->fifo[fh + i]);
    return 0;
}

static void
core_dealloc(CoreObject *self)
{
    PyObject_GC_UnTrack(self);
    core_clear_impl(self);
    PyMem_Free(self->heap);
    PyMem_Free(self->fifo);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
core_get_now(CoreObject *self, void *c)
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
core_get_pending(CoreObject *self, void *c)
{
    return PyLong_FromLongLong(self->live);
}

static PyObject *
core_get_executed(CoreObject *self, void *c)
{
    return PyLong_FromLongLong(self->executed);
}

static PyObject *
core_get_scheduled(CoreObject *self, void *c)
{
    return PyLong_FromLongLong(self->seq);
}

static PyObject *
core_get_compactions(CoreObject *self, void *c)
{
    return PyLong_FromLongLong(self->compactions);
}

static PyObject *
core_get_dead(CoreObject *self, void *c)
{
    return PyLong_FromLongLong(self->dead);
}

static PyObject *
core_get_heap_size(CoreObject *self, void *c)
{
    return PyLong_FromSsize_t(self->heap_len);
}

static PyObject *
core_get_compact_min_dead(CoreObject *self, void *c)
{
    return PyLong_FromLongLong(self->compact_min_dead);
}

static int
core_set_compact_min_dead(CoreObject *self, PyObject *v, void *c)
{
    long long n = PyLong_AsLongLong(v);
    if (n == -1 && PyErr_Occurred())
        return -1;
    self->compact_min_dead = n;
    return 0;
}

static PyMethodDef core_methods[] = {
    {"at", (PyCFunction)core_at, METH_FASTCALL,
     "at(time, fn, *args) -> NativeEvent"},
    {"schedule", (PyCFunction)core_schedule, METH_FASTCALL,
     "schedule(delay, fn, *args) -> NativeEvent"},
    {"run", (PyCFunction)core_run, METH_FASTCALL,
     "run(until_or_None, max_events_or_None)"},
    {"step", (PyCFunction)core_step, METH_NOARGS,
     "Execute the next event; False when idle."},
    {"peek_next_time", (PyCFunction)core_peek_next_time, METH_NOARGS,
     "Time of the next live event, or None."},
    {NULL},
};

static PyGetSetDef core_getset[] = {
    {"now", (getter)core_get_now, NULL, "current simulated time"},
    {"pending", (getter)core_get_pending, NULL, "live events queued"},
    {"events_executed", (getter)core_get_executed, NULL, NULL},
    {"events_scheduled", (getter)core_get_scheduled, NULL, NULL},
    {"heap_compactions", (getter)core_get_compactions, NULL, NULL},
    {"dead", (getter)core_get_dead, NULL, "tombstones in the heap"},
    {"heap_size", (getter)core_get_heap_size, NULL, NULL},
    {"compact_min_dead", (getter)core_get_compact_min_dead,
     (setter)core_set_compact_min_dead, "compaction floor (testing knob)"},
    {NULL},
};

static PyTypeObject CoreType = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "_nativecore.Core",
    .tp_basicsize = sizeof(CoreObject),
    .tp_dealloc = (destructor)core_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Native discrete-event core (heap + zero-delay lane).",
    .tp_traverse = (traverseproc)core_traverse,
    .tp_clear = (inquiry)core_clear_impl,
    .tp_methods = core_methods,
    .tp_getset = core_getset,
    .tp_new = core_new,
};

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static PyObject *
mod_set_error_classes(PyObject *mod, PyObject *args)
{
    PyObject *se, *spe;
    if (!PyArg_ParseTuple(args, "OO", &se, &spe))
        return NULL;
    Py_INCREF(se);
    Py_XSETREF(SimulationError, se);
    Py_INCREF(spe);
    Py_XSETREF(ScheduleInPastError, spe);
    Py_RETURN_NONE;
}

static PyMethodDef module_methods[] = {
    {"_set_error_classes", mod_set_error_classes, METH_VARARGS,
     "Inject (SimulationError, ScheduleInPastError)."},
    {NULL},
};

static struct PyModuleDef nativecore_module = {
    PyModuleDef_HEAD_INIT,
    "_nativecore",
    "Native (C) event core for the repro simulation kernel.",
    -1,
    module_methods,
};

PyMODINIT_FUNC
PyInit__nativecore(void)
{
    if (PyType_Ready(&EventType) < 0 || PyType_Ready(&CoreType) < 0)
        return NULL;
    empty_tuple = PyTuple_New(0);
    if (!empty_tuple)
        return NULL;
    PyObject *mod = PyModule_Create(&nativecore_module);
    if (!mod)
        return NULL;
    Py_INCREF(&EventType);
    PyModule_AddObject(mod, "NativeEvent", (PyObject *)&EventType);
    Py_INCREF(&CoreType);
    PyModule_AddObject(mod, "Core", (PyObject *)&CoreType);
    PyModule_AddIntConstant(mod, "ABI_VERSION", 1);
    return mod;
}
