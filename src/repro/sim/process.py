"""Generator-coroutine processes on top of the event kernel.

The NewMadeleine progress pump, the benchmark drivers and several tests are
written as *processes*: Python generators that ``yield`` waitable commands.

Supported yield values
----------------------
``Timeout(dt)``
    Suspend for ``dt`` microseconds of simulated time.
``Signal``
    Suspend until the signal is :meth:`Signal.fire`-d.  The value passed to
    ``fire`` is returned by the ``yield`` expression.
``Process``
    Suspend until the child process terminates; its return value (via
    ``return`` inside the generator) is returned by the ``yield``.
``AllOf([waitables])`` / ``AnyOf([waitables])``
    Barrier / first-completion combinators over signals and processes.

This is deliberately a small subset of what e.g. SimPy provides: only what
the engine needs, implemented deterministically and with explicit failure
modes.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from .engine import SimulationError, Simulator

__all__ = [
    "Timeout",
    "Signal",
    "Process",
    "AllOf",
    "AnyOf",
    "ProcessError",
    "spawn",
]


class ProcessError(SimulationError):
    """Raised when a process is misused (e.g. bad yield value)."""


class Timeout:
    """Suspend the yielding process for ``dt`` simulated microseconds."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise ProcessError(f"negative timeout {dt!r}")
        self.dt = dt

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.dt})"


class Signal:
    """A broadcast one-shot-per-fire wake-up condition.

    Multiple processes (and plain callbacks) may wait on a signal; a call to
    :meth:`fire` wakes *all* current waiters exactly once and clears the
    waiter list.  Signals can be fired repeatedly; waiters registered after a
    fire wait for the next one.  This matches the "NIC activity" wake-up
    semantics the engine needs: late subscribers do not see past fires.
    """

    __slots__ = ("sim", "name", "_waiters", "fire_count")

    def __init__(self, sim: Simulator, name: str = "signal"):
        self.sim = sim
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self.fire_count = 0

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)`` to run on the next fire."""
        self._waiters.append(callback)

    def unwait(self, callback: Callable[[Any], None]) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns the number of waiters woken.

        Waiters run *immediately* (synchronously) in registration order.
        The engine relies on this for precise accounting of wake-up costs.
        """
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            cb(value)
        return len(waiters)

    def fire_later(self, delay: float, value: Any = None) -> None:
        """Schedule a fire ``delay`` microseconds from now."""
        self.sim.schedule(delay, self.fire, value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Signal {self.name} waiters={len(self._waiters)}>"


class AllOf:
    """Waitable combinator: resume when *all* children complete.

    The yield expression evaluates to a list of child results in the order
    the children were given.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]):
        self.children = list(children)
        if not self.children:
            raise ProcessError("AllOf requires at least one child")


class AnyOf:
    """Waitable combinator: resume when the *first* child completes.

    The yield expression evaluates to ``(index, value)`` of the first child
    to complete.  Remaining waits are abandoned (signals simply lose a
    waiter; child processes keep running but no longer notify).
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]):
        self.children = list(children)
        if not self.children:
            raise ProcessError("AnyOf requires at least one child")


class Process:
    """A running generator process.

    Create via :func:`spawn`.  The generator's ``return`` value becomes
    :attr:`value`; uncaught exceptions are re-raised out of the simulator
    loop (they are programming errors, not simulated failures).
    """

    __slots__ = ("sim", "name", "_gen", "_done", "value", "_watchers", "_started")

    def __init__(self, sim: Simulator, gen: Generator, name: str = "proc"):
        self.sim = sim
        self.name = name
        self._gen = gen
        self._done = False
        self.value: Any = None
        self._watchers: list[Callable[[Any], None]] = []
        self._started = False

    # -- public ----------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    def on_done(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(return_value)`` when the process terminates."""
        if self._done:
            callback(self.value)
        else:
            self._watchers.append(callback)

    # -- machinery ---------------------------------------------------------
    def _start(self) -> None:
        if self._started:
            raise ProcessError(f"process {self.name} started twice")
        self._started = True
        self._advance(None)

    def _advance(self, send_value: Any) -> None:
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._arm(yielded, self._advance)

    def _arm(self, yielded: Any, resume: Callable[[Any], None]) -> None:
        """Register ``resume`` to be called when ``yielded`` completes."""
        if isinstance(yielded, Timeout):
            self.sim.schedule(yielded.dt, resume, None)
        elif isinstance(yielded, Signal):
            yielded.wait(resume)
        elif isinstance(yielded, Process):
            yielded.on_done(resume)
        elif isinstance(yielded, AllOf):
            self._arm_all(yielded, resume)
        elif isinstance(yielded, AnyOf):
            self._arm_any(yielded, resume)
        else:
            raise ProcessError(
                f"process {self.name} yielded unsupported value {yielded!r}"
            )

    def _arm_all(self, allof: AllOf, resume: Callable[[Any], None]) -> None:
        results: list[Any] = [None] * len(allof.children)
        remaining = [len(allof.children)]

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                results[i] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    resume(results)

            return cb

        for i, child in enumerate(allof.children):
            self._arm(child, make_cb(i))

    def _arm_any(self, anyof: AnyOf, resume: Callable[[Any], None]) -> None:
        fired = [False]

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                if fired[0]:
                    return
                fired[0] = True
                resume((i, value))

            return cb

        for i, child in enumerate(anyof.children):
            self._arm(child, make_cb(i))

    def _finish(self, value: Any) -> None:
        self._done = True
        self.value = value
        watchers, self._watchers = self._watchers, []
        for cb in watchers:
            cb(value)

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self._done else "running"
        return f"<Process {self.name} {state}>"


def spawn(sim: Simulator, gen: Generator, name: str = "proc", delay: float = 0.0) -> Process:
    """Create a :class:`Process` from a generator and start it.

    The first step of the generator runs ``delay`` microseconds from now
    (default: at the current time, after already-queued events).
    """
    proc = Process(sim, gen, name=name)
    sim.schedule(delay, proc._start)
    return proc
