"""Flow-level bandwidth sharing with max-min fairness.

Large (DMA / rendezvous) transfers are not simulated packet by packet but as
*flows*: a flow has a byte size and a path through capacitated links (the
sending host's I/O bus, the NIC link, ...).  Whenever the set of active
flows changes, the network recomputes a **max-min fair** rate allocation via
progressive filling (water-filling) and reschedules each flow's completion
event.

This is the standard fluid model used by flow-level network simulators; it
captures exactly the effect the paper attributes its aggregate-bandwidth
ceiling to: two DMA streams (Myri-10G at 1200 MB/s and Quadrics at 850 MB/s)
contending for one I/O bus of ~2 GB/s.

Max-min fairness (progressive filling)
--------------------------------------
Repeatedly find the link whose *fair share* (residual capacity divided by
the number of unfrozen flows crossing it) is smallest; freeze all its flows
at that share; subtract their rates from every link they cross.  The result
is the unique allocation in which no flow can increase its rate without
decreasing the rate of a flow with an already-smaller-or-equal rate.

Invariants (property-tested in ``tests/property/test_flows_prop.py``):

* conservation — the sum of flow rates across any link never exceeds its
  capacity (within float tolerance);
* bottleneck condition — every flow crosses at least one saturated link on
  which it has a maximal rate;
* work conservation — a single flow on an otherwise idle path gets the
  minimum capacity along its path.

Incremental reallocation
------------------------
Starting, draining or cancelling a flow can only change the rates of
flows in the *connected component* of links transitively reachable from
the changed flow's path: max-min allocation decomposes exactly across
link-disjoint components (progressive filling never moves capacity
between components, and freeze order between components cannot change a
component's own bottleneck sequence).  :meth:`FlowNetwork._reallocate`
therefore recomputes rates only for that component, and within it skips
the completion-event cancel/reschedule for flows whose rate came out
bit-identical — the scheduled event already encodes the same completion
time.  Flow iteration follows insertion order everywhere (``_flows`` is
an ordered dict, never an id-ordered set), so event sequence numbers —
the FIFO tie-break among equal timestamps — are reproducible across
processes; the parallel sweep runner relies on this.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Iterable, Optional, Sequence

from .engine import EventHandle, SimulationError, Simulator

__all__ = [
    "Link",
    "Flow",
    "FlowNetwork",
    "FlowError",
    "max_min_rates",
    "make_flow_network",
]

_EPS = 1e-9


class FlowError(SimulationError):
    """Raised on flow-network misuse."""


class Link:
    """A capacitated, work-conserving link.

    ``capacity`` is in bytes per microsecond, numerically equal to MB/s
    (with 1 MB = 1e6 B).  Links carry no latency themselves; propagation
    latency is accounted for by the caller (see
    :meth:`FlowNetwork.start_flow`'s ``extra_latency``).
    """

    __slots__ = ("name", "capacity", "active_flows")

    def __init__(self, name: str, capacity_MBps: float):
        if capacity_MBps <= 0:
            raise FlowError(f"link {name!r} capacity must be positive")
        self.name = name
        self.capacity = float(capacity_MBps)
        self.active_flows: set["Flow"] = set()

    @property
    def utilization(self) -> float:
        """Current fraction of capacity in use (0..1)."""
        used = sum(f.rate for f in self.active_flows)
        return used / self.capacity

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Link {self.name} cap={self.capacity} active={len(self.active_flows)}>"


class Flow:
    """One in-flight bulk transfer."""

    __slots__ = (
        "fid",
        "path",
        "size",
        "remaining",
        "rate",
        "on_complete",
        "on_drain",
        "start_time",
        "last_update",
        "_completion_ev",
        "done",
        "extra_latency",
        "tag",
    )

    def __init__(
        self,
        fid: int,
        path: Sequence[Link],
        size: float,
        on_complete: Optional[Callable[["Flow"], None]],
        start_time: float,
        extra_latency: float,
        tag: object = None,
        on_drain: Optional[Callable[["Flow"], None]] = None,
    ):
        self.fid = fid
        self.path = tuple(path)
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.on_complete = on_complete
        self.on_drain = on_drain
        self.start_time = start_time
        self.last_update = start_time
        self._completion_ev: Optional[EventHandle] = None
        self.done = False
        self.extra_latency = extra_latency
        self.tag = tag

    @property
    def transferred(self) -> float:
        return self.size - self.remaining

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Flow {self.fid} size={self.size:.0f} rem={self.remaining:.0f}"
            f" rate={self.rate:.1f}>"
        )


def max_min_rates(
    flows: Iterable[Flow], capacities: Optional[dict[Link, float]] = None
) -> dict[Flow, float]:
    """Compute the max-min fair allocation for ``flows``.

    Pure function (no simulator state) so it can be property-tested in
    isolation.  ``capacities`` optionally overrides link capacities.
    """
    flows = list(flows)
    if not flows:
        return {}
    residual: dict[Link, float] = {}
    counts: dict[Link, int] = {}
    for f in flows:
        if not f.path:
            raise FlowError(f"flow {f.fid} has an empty path")
        for link in f.path:
            residual.setdefault(link, capacities[link] if capacities else link.capacity)
            counts[link] = counts.get(link, 0) + 1

    rates: dict[Flow, float] = {}
    # insertion-ordered (not an id-hashed set) so the float update order —
    # and with it the last-ulp result — is reproducible across processes.
    unfrozen: dict[Flow, None] = dict.fromkeys(flows)
    while unfrozen:
        # Fair share of each link still crossed by unfrozen flows.
        bottleneck: Optional[Link] = None
        best_share = math.inf
        for link, n in counts.items():
            if n <= 0:
                continue
            share = residual[link] / n
            if share < best_share - _EPS:
                best_share = share
                bottleneck = link
        if bottleneck is None:  # pragma: no cover - defensive
            raise FlowError("no bottleneck found with unfrozen flows remaining")
        # Freeze every unfrozen flow crossing the bottleneck at best_share.
        frozen_now = [f for f in unfrozen if bottleneck in f.path]
        for f in frozen_now:
            rates[f] = best_share
            del unfrozen[f]
            for link in f.path:
                residual[link] = max(0.0, residual[link] - best_share)
                counts[link] -= 1
    return rates


class FlowNetwork:
    """Manages active flows and keeps their completion events consistent."""

    #: allocator mode label (``repro.sim.flows_vec`` overrides).
    mode = "scalar"

    def __init__(self, sim: Simulator):
        self.sim = sim
        #: insertion-ordered so reallocation visits flows deterministically
        #: (event seq assignment must not depend on id()-hash order).
        self._flows: dict[Flow, None] = {}
        self._fid = itertools.count(1)
        self.completed_count = 0
        self.total_bytes_completed = 0.0
        #: completion events actually (re)scheduled — the regression
        #: counter for the incremental-reallocation fast path.
        self.reschedule_count = 0

    @property
    def active_flows(self) -> frozenset[Flow]:
        return frozenset(self._flows)

    # ------------------------------------------------------------------ #
    def start_flow(
        self,
        path: Sequence[Link],
        size: float,
        on_complete: Optional[Callable[[Flow], None]] = None,
        extra_latency: float = 0.0,
        tag: object = None,
        on_drain: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Begin a transfer of ``size`` bytes along ``path``.

        ``on_drain(flow)`` fires when the last byte leaves the sending side
        (the sender's DMA engine is free again); ``on_complete(flow)`` fires
        ``extra_latency`` microseconds later (propagation to the far end).
        Zero-size flows complete after ``extra_latency`` without occupying
        the network.
        """
        if size < 0:
            raise FlowError(f"negative flow size {size}")
        flow = self._new_flow(
            next(self._fid),
            path,
            size,
            on_complete,
            self.sim.now,
            extra_latency,
            tag,
            on_drain,
        )
        if size == 0:
            if on_drain is not None:
                self.sim.schedule(0.0, on_drain, flow)
            self.sim.schedule(extra_latency, self._finish, flow)
            return flow
        self._attach(flow)
        self._reallocate(flow)
        return flow

    def refresh(self) -> None:
        """Recompute all rates after an external link-capacity change.

        Capacities are normally constant for the life of a network; the
        fault injector mutates them when a rail degrades or recovers and
        must then resynchronize every affected completion event.
        """
        if self._flows:
            self._reallocate(None)

    def cancel_flow(self, flow: Flow) -> None:
        """Abort a flow; its completion callback never fires."""
        if flow.done or flow not in self._flows:
            return
        self._settle()
        self._detach(flow)
        flow.done = True
        flow.on_complete = None
        flow.on_drain = None
        self._reallocate(flow)

    # ------------------------------------------------------------------ #
    # Subclass hooks: the vectorized network (``flows_vec``) overrides
    # these to mirror flow state into persistent numpy arrays.
    def _new_flow(self, *args) -> Flow:
        return Flow(*args)

    def _attach(self, flow: Flow) -> None:
        self._flows[flow] = None
        for link in flow.path:
            link.active_flows.add(flow)

    def _detach(self, flow: Flow) -> None:
        self._flows.pop(flow, None)
        for link in flow.path:
            link.active_flows.discard(flow)
        if flow._completion_ev is not None:
            flow._completion_ev.cancel()
            flow._completion_ev = None

    def _settle(self) -> None:
        """Account for bytes moved at the current rates since last update."""
        now = self.sim.now
        for f in self._flows:
            elapsed = now - f.last_update
            if elapsed > 0:
                f.remaining = max(0.0, f.remaining - f.rate * elapsed)
            f.last_update = now

    def _component(self, origin: Flow) -> list[Flow]:
        """Active flows transitively sharing links with ``origin``'s path.

        ``origin`` itself is included when still active.  The returned
        list follows ``_flows`` insertion order so event scheduling stays
        deterministic regardless of traversal order; fids are assigned in
        insertion order, so sorting the component by fid reproduces that
        order in O(k log k) — the cost of a reallocation depends on the
        size of the affected shard, never on the total flow count.
        """
        seen_links: set[Link] = set(origin.path)
        member: set[Flow] = set()
        stack: list[Link] = list(origin.path)
        while stack:
            link = stack.pop()
            for f in link.active_flows:
                if f not in member:
                    member.add(f)
                    for other in f.path:
                        if other not in seen_links:
                            seen_links.add(other)
                            stack.append(other)
        if len(member) == len(self._flows):
            return list(self._flows)
        return sorted(member, key=lambda f: f.fid)

    def _reallocate(self, origin: Optional[Flow] = None) -> None:
        """Recompute max-min rates and reschedule stale completions.

        With ``origin`` given (the flow that just started, drained or was
        cancelled), only its link-connected component is recomputed — any
        other flow's allocation is provably unchanged (see module
        docstring).  Within the component, a flow whose rate came out
        bit-identical keeps its already-scheduled completion event: the
        event encodes the same completion time, so cancelling and
        re-pushing it would only grow the heap with a tombstone.
        """
        self._settle()
        affected = self._component(origin) if origin is not None else list(self._flows)
        rates = max_min_rates(affected)
        schedule = self.sim.schedule
        for f in affected:
            new_rate = rates.get(f, 0.0)
            if new_rate <= _EPS:  # pragma: no cover - defensive
                raise FlowError(f"flow {f.fid} allocated zero rate")
            ev = f._completion_ev
            if new_rate == f.rate and ev is not None and ev.alive:
                continue
            f.rate = new_rate
            if ev is not None:
                ev.cancel()
            self.reschedule_count += 1
            f._completion_ev = schedule(f.remaining / new_rate, self._on_drain, f)

    def _on_drain(self, flow: Flow) -> None:
        """The flow's last byte has left; deliver after propagation."""
        if flow.done or flow not in self._flows:
            return
        self._settle()
        # Float guard: the event fired, so the flow is drained by design.
        flow.remaining = 0.0
        self._detach(flow)
        if flow.on_drain is not None:
            flow.on_drain(flow)
        if flow.extra_latency > 0:
            self.sim.schedule(flow.extra_latency, self._finish, flow)
        else:
            self._finish(flow)
        # Remaining flows sharing links with the drained one speed up.
        if self._flows:
            self._reallocate(flow)

    def _finish(self, flow: Flow) -> None:
        flow.done = True
        self.completed_count += 1
        self.total_bytes_completed += flow.size
        if flow.on_complete is not None:
            flow.on_complete(flow)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FlowNetwork active={len(self._flows)} done={self.completed_count}>"


def make_flow_network(sim: Simulator, mode: Optional[str] = None) -> FlowNetwork:
    """Construct a flow network with the selected allocator mode.

    ``mode`` of ``None`` resolves via ``$REPRO_SIM_FLOWS`` (then
    ``auto``, see :func:`repro.sim.backend.flows_mode`).  Both modes
    produce bit-identical rates and event schedules; ``vector`` batches
    the settle step and large max-min components through numpy.
    """
    from .backend import flows_mode

    if flows_mode(mode) == "vector":
        from .flows_vec import VectorFlowNetwork

        return VectorFlowNetwork(sim)
    return FlowNetwork(sim)
