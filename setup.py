"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks
the ``wheel`` package (PEP 660 editable builds need it, ``setup.py
develop`` does not).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'High-Performance Multi-Rail Support with the "
        "NewMadeleine Communication Library' (HCW/IPDPS 2007) as a "
        "discrete-event simulation study"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
